(** Discretization of the MPDE (paper eq. (4))

    [∂q(x̂)/∂t1 + ∂q(x̂)/∂t2 + f(x̂) = b̂(t1, t2)]

    on the bi-periodic grid. The default scheme is fully implicit
    backward differences in both artificial times (robust for the stiff
    switching circuits the method targets); a central-difference option
    along [t1] is provided for the accuracy-order ablation. *)

type system = {
  size : int;  (** circuit unknowns per grid point *)
  eval_f : Linalg.Vec.t -> Linalg.Vec.t;
  eval_q : Linalg.Vec.t -> Linalg.Vec.t;
  jacobians : Linalg.Vec.t -> Sparse.Csr.t * Sparse.Csr.t;
  source_at : t1:float -> t2:float -> Linalg.Vec.t;  (** [b̂(t1, t2)] *)
  fast : Numeric.Dae.fast option;
      (** allocation-free evaluation callbacks, when the producer has
          them ({!of_mna} does); used by {!workspace} *)
}

val of_mna : shear:Shear.t -> Circuit.Mna.t -> system
(** Wire a circuit's MNA equations to the sheared excitation. *)

val of_dae : Numeric.Dae.t -> system
(** For systems built directly as DAEs: the excitation is taken on the
    fast scale only, [b̂(t1,t2) = b(t1)] — valid for single-tone sources.
    No shear is involved (which is why none is accepted); prefer
    {!of_mna} for multi-tone excitations, where the shear warps each
    source's phase individually. *)

type scheme =
  | Backward  (** fully implicit backward differences in t1 and t2 (default) *)
  | Central_t1  (** 2nd-order central differences along t1, backward along t2 *)
  | Spectral_t1
      (** exact trigonometric (pseudo-spectral) differentiation along t1 —
          the mixed frequency-time variant: harmonic-balance accuracy on
          the fast scale, time-domain backward differences on the slow
          difference scale. Requires odd [n1]; best with the [Direct]
          linear solver (the Jacobian couples all fast-scale points). *)
  | Spectral_both
      (** pseudo-spectral differentiation along *both* artificial times —
          algebraically this is two-tone harmonic balance with box
          truncation over the (f1, fd) lattice, recovered inside the
          MPDE machinery. Exact for smooth (band-limited) solutions;
          inherits HB's weakness on sharp switching waveforms, which is
          precisely the comparison the paper draws. Requires odd [n1]
          and odd [n2]; use the [Direct] linear solver. *)

val spectral_ok : Grid.t -> bool
(** Whether the grid's [n1] is acceptable for [Spectral_t1] (odd). *)

val spectral_both_ok : Grid.t -> bool
(** Whether both grid dimensions are acceptable for [Spectral_both]. *)

val sources_on_grid : system -> Grid.t -> Linalg.Vec.t array
(** Per-point [b̂] samples in flattened point order (precompute once —
    the excitation does not depend on the iterate). *)

val residual :
  scheme -> system -> Grid.t -> sources:Linalg.Vec.t array -> Linalg.Vec.t -> Linalg.Vec.t
(** Residual of the discretized MPDE at the flattened iterate. *)

val point_jacobians :
  system -> Grid.t -> Linalg.Vec.t -> (Sparse.Csr.t * Sparse.Csr.t) array
(** [(G, C)] per grid point, flattened point order. *)

val jacobian_csr :
  scheme ->
  Grid.t ->
  size:int ->
  jacs:(Sparse.Csr.t * Sparse.Csr.t) array ->
  Sparse.Csr.t
(** Global sparse Jacobian from per-point blocks. *)

val state_of : size:int -> Linalg.Vec.t -> int -> Linalg.Vec.t
(** Extract grid point [p]'s circuit state from the flattened vector. *)

(** {2 Workspace: symbolic-once / numeric-refresh assembly}

    The one-shot entry points above rebuild every buffer and every
    sparsity pattern per call. A {!workspace} instead freezes the
    expensive symbolic work — the big Jacobian's CSR pattern, the
    per-point Jacobian patterns, the charge/conductive evaluation
    buffers — at the first call and only rewrites float values on later
    Newton iterations. Results are bitwise identical to the one-shot
    path (both funnel through the same stencil and stamping loops, and
    CSR value refresh replays the duplicate-merge order of a fresh
    build). A workspace belongs to one solve stream on one domain; it
    must never be shared concurrently. *)

type workspace

val workspace : scheme -> system -> Grid.t -> workspace
(** Allocate reusable assembly scratch for a (scheme, system, grid)
    triple. Validates spectral-grid requirements eagerly. *)

val residual_ws :
  workspace -> sources:Linalg.Vec.t array -> Linalg.Vec.t -> Linalg.Vec.t
(** Like {!residual}, reusing the workspace's internal buffers. The
    returned residual is a fresh array each call (Newton keeps residual
    vectors across iterations); only internal scratch is reused. *)

val point_jacobians_ws :
  workspace -> Linalg.Vec.t -> (Sparse.Csr.t * Sparse.Csr.t) array
(** Like {!point_jacobians}, but after the first call the cached CSR
    instances are refreshed in place via the system's
    [fast.jacobian_refresher] (falling back to a from-scratch rebuild
    of any point whose sparsity drifted, or of every point when the
    system has no fast interface). The returned array and its matrices
    are owned by the workspace and overwritten by the next call. *)

val jacobian_ws : workspace -> Sparse.Csr.t
(** Global sparse Jacobian stamped from the workspace's current
    per-point blocks (call {!point_jacobians_ws} first — raises
    [Invalid_argument] otherwise). The first call assembles the CSR
    symbolically; later calls rewrite values in place and return the
    {e same} matrix instance, which keeps downstream pattern-keyed
    caches ([Splu.refactorable], [Ilu0.refactorable]) valid. *)
