type system = {
  size : int;
  eval_f : Linalg.Vec.t -> Linalg.Vec.t;
  eval_q : Linalg.Vec.t -> Linalg.Vec.t;
  jacobians : Linalg.Vec.t -> Sparse.Csr.t * Sparse.Csr.t;
  source_at : t1:float -> t2:float -> Linalg.Vec.t;
  fast : Numeric.Dae.fast option;
}

let of_mna ~shear mna =
  let dae = Circuit.Mna.dae mna in
  {
    size = Circuit.Mna.size mna;
    eval_f = dae.Numeric.Dae.eval_f;
    eval_q = dae.Numeric.Dae.eval_q;
    jacobians = dae.Numeric.Dae.jacobians;
    source_at =
      (fun ~t1 ~t2 -> Circuit.Mna.source_with mna ~phase_of:(Shear.phase shear ~t1 ~t2));
    fast = dae.Numeric.Dae.fast;
  }

let of_dae (dae : Numeric.Dae.t) =
  {
    size = dae.Numeric.Dae.size;
    eval_f = dae.Numeric.Dae.eval_f;
    eval_q = dae.Numeric.Dae.eval_q;
    jacobians = dae.Numeric.Dae.jacobians;
    source_at = (fun ~t1 ~t2:_ -> dae.Numeric.Dae.source t1);
    fast = dae.Numeric.Dae.fast;
  }

type scheme = Backward | Central_t1 | Spectral_t1 | Spectral_both

let spectral_ok (g : Grid.t) = g.Grid.n1 >= 3 && g.Grid.n1 mod 2 = 1

let spectral_both_ok (g : Grid.t) =
  spectral_ok g && g.Grid.n2 >= 3 && g.Grid.n2 mod 2 = 1

let diff_matrix_t1 (g : Grid.t) =
  Numeric.Spectral.diff_matrix g.Grid.n1 (Shear.t1_period g.Grid.shear)

let diff_matrix_t2 (g : Grid.t) =
  Numeric.Spectral.diff_matrix g.Grid.n2 (Shear.t2_period g.Grid.shear)

(* Validated differentiation matrices for a (scheme, grid) pair: [None]
   for the finite-difference directions. *)
let diff_matrices scheme (g : Grid.t) =
  let diff_t1 =
    match scheme with
    | Spectral_t1 ->
        if not (spectral_ok g) then
          invalid_arg "Mpde.Assemble: Spectral_t1 needs odd n1 >= 3";
        Some (diff_matrix_t1 g)
    | Spectral_both ->
        if not (spectral_both_ok g) then
          invalid_arg "Mpde.Assemble: Spectral_both needs odd n1 and n2 >= 3";
        Some (diff_matrix_t1 g)
    | Backward | Central_t1 -> None
  in
  let diff_t2 =
    match scheme with
    | Spectral_both -> Some (diff_matrix_t2 g)
    | Backward | Central_t1 | Spectral_t1 -> None
  in
  (diff_t1, diff_t2)

let state_of ~size big_x p = Array.sub big_x (p * size) size

let sources_on_grid sys (g : Grid.t) =
  Array.init (Grid.points g) (fun p ->
      let i = p mod g.Grid.n1 and j = p / g.Grid.n1 in
      sys.source_at ~t1:(Grid.t1_of g i) ~t2:(Grid.t2_of g j))

(* Shared stencil evaluation: both the one-shot [residual] and the
   workspace path funnel through this loop so their float results are
   bitwise identical by construction. [qs] holds the per-point charges
   (distinct buffers — neighbours are read simultaneously); [get_f p]
   may return a buffer reused across calls (consumed within the
   iteration). [r] is the caller-owned output, length np*n. *)
let residual_core scheme (g : Grid.t) ~n ~(qs : Linalg.Vec.t array) ~diff_t1
    ~diff_t2 ~get_f ~sources (r : Linalg.Vec.t) =
  let np = Grid.points g in
  for p = 0 to np - 1 do
    let i = p mod g.Grid.n1 and j = p / g.Grid.n1 in
    let f = get_f p in
    let b = sources.(p) in
    let q = qs.(p) in
    let q_jm1 = qs.(Grid.point_index g i (j - 1)) in
    match scheme with
    | Backward ->
        let q_im1 = qs.(Grid.point_index g (i - 1) j) in
        for v = 0 to n - 1 do
          r.((p * n) + v) <-
            ((q.(v) -. q_im1.(v)) /. g.Grid.h1)
            +. ((q.(v) -. q_jm1.(v)) /. g.Grid.h2)
            +. f.(v) -. b.(v)
        done
    | Central_t1 ->
        let q_im1 = qs.(Grid.point_index g (i - 1) j) in
        let q_ip1 = qs.(Grid.point_index g (i + 1) j) in
        for v = 0 to n - 1 do
          r.((p * n) + v) <-
            ((q_ip1.(v) -. q_im1.(v)) /. (2.0 *. g.Grid.h1))
            +. ((q.(v) -. q_jm1.(v)) /. g.Grid.h2)
            +. f.(v) -. b.(v)
        done
    | Spectral_t1 ->
        let d = Option.get diff_t1 in
        for v = 0 to n - 1 do
          let dq = ref 0.0 in
          for l = 0 to g.Grid.n1 - 1 do
            let dil = Linalg.Mat.get d i l in
            if dil <> 0.0 then dq := !dq +. (dil *. qs.(Grid.point_index g l j).(v))
          done;
          r.((p * n) + v) <-
            !dq +. ((q.(v) -. q_jm1.(v)) /. g.Grid.h2) +. f.(v) -. b.(v)
        done
    | Spectral_both ->
        let d1 = Option.get diff_t1 and d2 = Option.get diff_t2 in
        for v = 0 to n - 1 do
          let dq = ref 0.0 in
          for l = 0 to g.Grid.n1 - 1 do
            let dil = Linalg.Mat.get d1 i l in
            if dil <> 0.0 then dq := !dq +. (dil *. qs.(Grid.point_index g l j).(v))
          done;
          for m = 0 to g.Grid.n2 - 1 do
            let djm = Linalg.Mat.get d2 j m in
            if djm <> 0.0 then dq := !dq +. (djm *. qs.(Grid.point_index g i m).(v))
          done;
          r.((p * n) + v) <- !dq +. f.(v) -. b.(v)
        done
  done

let residual scheme sys (g : Grid.t) ~sources big_x =
  Telemetry.span "mpde.assemble.residual" @@ fun () ->
  let n = sys.size in
  let np = Grid.points g in
  let qs = Array.init np (fun p -> sys.eval_q (state_of ~size:n big_x p)) in
  let diff_t1, diff_t2 = diff_matrices scheme g in
  let r = Array.make (np * n) 0.0 in
  residual_core scheme g ~n ~qs ~diff_t1 ~diff_t2
    ~get_f:(fun p -> sys.eval_f (state_of ~size:n big_x p))
    ~sources r;
  r

let point_jacobians sys (g : Grid.t) big_x =
  Telemetry.span "mpde.assemble.jacobians" @@ fun () ->
  Array.init (Grid.points g) (fun p -> sys.jacobians (state_of ~size:sys.size big_x p))

let add_block coo ~row_base ~col_base ~scale (m : Sparse.Csr.t) =
  if scale <> 0.0 then
    for i = 0 to m.Sparse.Csr.rows - 1 do
      Sparse.Csr.iter_row m i (fun j v ->
          Sparse.Coo.add coo (row_base + i) (col_base + j) (scale *. v))
    done

(* Stamp the big MPDE Jacobian into [coo]. Shared between the one-shot
   [jacobian_csr] and the workspace refresh so the triplet insertion
   order — and hence the duplicate-merge float results in the assembled
   CSR — is identical on both paths. *)
let stamp_big coo scheme (g : Grid.t) ~n ~jacs ~diff_t1 ~diff_t2 =
  let np = Grid.points g in
  for p = 0 to np - 1 do
    let i = p mod g.Grid.n1 and j = p / g.Grid.n1 in
    let gp, cp = jacs.(p) in
    let row_base = p * n in
    (* t2 coupling: backward difference except for the bi-spectral scheme *)
    (match scheme with
    | Backward | Central_t1 | Spectral_t1 ->
        let p_jm1 = Grid.point_index g i (j - 1) in
        let _, c_jm1 = jacs.(p_jm1) in
        add_block coo ~row_base ~col_base:row_base ~scale:(1.0 /. g.Grid.h2) cp;
        add_block coo ~row_base ~col_base:(p_jm1 * n) ~scale:(-1.0 /. g.Grid.h2) c_jm1
    | Spectral_both ->
        let d2 = Option.get diff_t2 in
        for m = 0 to g.Grid.n2 - 1 do
          let djm = Linalg.Mat.get d2 j m in
          if djm <> 0.0 then begin
            let pm = Grid.point_index g i m in
            let _, c_m = jacs.(pm) in
            add_block coo ~row_base ~col_base:(pm * n) ~scale:djm c_m
          end
        done);
    (* conductive part on the diagonal block *)
    add_block coo ~row_base ~col_base:row_base ~scale:1.0 gp;
    match scheme with
    | Backward ->
        let p_im1 = Grid.point_index g (i - 1) j in
        let _, c_im1 = jacs.(p_im1) in
        add_block coo ~row_base ~col_base:row_base ~scale:(1.0 /. g.Grid.h1) cp;
        add_block coo ~row_base ~col_base:(p_im1 * n) ~scale:(-1.0 /. g.Grid.h1) c_im1
    | Central_t1 ->
        let p_im1 = Grid.point_index g (i - 1) j in
        let p_ip1 = Grid.point_index g (i + 1) j in
        let _, c_im1 = jacs.(p_im1) in
        let _, c_ip1 = jacs.(p_ip1) in
        add_block coo ~row_base ~col_base:(p_ip1 * n) ~scale:(0.5 /. g.Grid.h1) c_ip1;
        add_block coo ~row_base ~col_base:(p_im1 * n) ~scale:(-0.5 /. g.Grid.h1) c_im1
    | Spectral_t1 | Spectral_both ->
        let d = Option.get diff_t1 in
        for l = 0 to g.Grid.n1 - 1 do
          let dil = Linalg.Mat.get d i l in
          if dil <> 0.0 then begin
            let pl = Grid.point_index g l j in
            let _, c_l = jacs.(pl) in
            add_block coo ~row_base ~col_base:(pl * n) ~scale:dil c_l
          end
        done
  done

let jacobian_csr scheme (g : Grid.t) ~size ~jacs =
  Telemetry.span "mpde.assemble.jacobian_csr" @@ fun () ->
  let n = size in
  let np = Grid.points g in
  let big = np * n in
  let coo = Sparse.Coo.create ~capacity:(12 * big) big big in
  let diff_t1 =
    match scheme with
    | Spectral_t1 | Spectral_both -> Some (diff_matrix_t1 g)
    | Backward | Central_t1 -> None
  in
  let diff_t2 =
    match scheme with
    | Spectral_both -> Some (diff_matrix_t2 g)
    | Backward | Central_t1 | Spectral_t1 -> None
  in
  stamp_big coo scheme g ~n ~jacs ~diff_t1 ~diff_t2;
  Sparse.Csr.of_coo coo

(* ------------------------------------------------------------------ *)
(* Workspace: symbolic-once / numeric-refresh assembly                 *)
(* ------------------------------------------------------------------ *)

type workspace = {
  ws_scheme : scheme;
  ws_sys : system;
  ws_grid : Grid.t;
  ws_n : int;
  ws_np : int;
  ws_diff_t1 : Linalg.Mat.t option;
  ws_diff_t2 : Linalg.Mat.t option;
  qs : Linalg.Vec.t array;  (* np charge buffers of length n *)
  f_buf : Linalg.Vec.t;
  x_buf : Linalg.Vec.t;  (* staging slice of the flattened iterate *)
  eval_f_into : Linalg.Vec.t -> Linalg.Vec.t -> unit;
  eval_q_into : Linalg.Vec.t -> Linalg.Vec.t -> unit;
  refresh_jacs : (Linalg.Vec.t -> g:Sparse.Csr.t -> c:Sparse.Csr.t -> bool) option;
  mutable jacs : (Sparse.Csr.t * Sparse.Csr.t) array;  (* [||] until built *)
  mutable big_coo : Sparse.Coo.t option;  (* lazy: direct solves never stamp *)
  mutable big_jac : Sparse.Csr.t option;
}

let workspace scheme sys (g : Grid.t) =
  let n = sys.size in
  let np = Grid.points g in
  let diff_t1, diff_t2 = diff_matrices scheme g in
  let eval_f_into, eval_q_into, refresh_jacs =
    match sys.fast with
    | Some fast ->
        ( fast.Numeric.Dae.eval_f_into,
          fast.Numeric.Dae.eval_q_into,
          (* One private stamping stream per workspace: a workspace is
             single-domain by contract, so this is the single writer. *)
          Some (fast.Numeric.Dae.jacobian_refresher ()) )
    | None ->
        ( (fun x out -> Array.blit (sys.eval_f x) 0 out 0 n),
          (fun x out -> Array.blit (sys.eval_q x) 0 out 0 n),
          None )
  in
  {
    ws_scheme = scheme;
    ws_sys = sys;
    ws_grid = g;
    ws_n = n;
    ws_np = np;
    ws_diff_t1 = diff_t1;
    ws_diff_t2 = diff_t2;
    qs = Array.init np (fun _ -> Array.make n 0.0);
    f_buf = Array.make n 0.0;
    x_buf = Array.make n 0.0;
    eval_f_into;
    eval_q_into;
    refresh_jacs;
    jacs = [||];
    big_coo = None;
    big_jac = None;
  }

(* Stage grid point [p]'s state into the workspace's slice buffer.
   Consumers must finish with the buffer before the next call. *)
let load_state ws big_x p =
  Array.blit big_x (p * ws.ws_n) ws.x_buf 0 ws.ws_n;
  ws.x_buf

let residual_ws ws ~sources big_x =
  Telemetry.span "mpde.assemble.residual" @@ fun () ->
  let n = ws.ws_n and np = ws.ws_np in
  for p = 0 to np - 1 do
    ws.eval_q_into (load_state ws big_x p) ws.qs.(p)
  done;
  (* Fresh output: Newton retains residual vectors across iterations. *)
  let r = Array.make (np * n) 0.0 in
  residual_core ws.ws_scheme ws.ws_grid ~n ~qs:ws.qs ~diff_t1:ws.ws_diff_t1
    ~diff_t2:ws.ws_diff_t2
    ~get_f:(fun p ->
      ws.eval_f_into (load_state ws big_x p) ws.f_buf;
      ws.f_buf)
    ~sources r;
  r

let point_jacobians_ws ws big_x =
  Telemetry.span "mpde.assemble.jacobians" @@ fun () ->
  let np = ws.ws_np in
  if Array.length ws.jacs <> np then
    ws.jacs <-
      Array.init np (fun p ->
          ws.ws_sys.jacobians (state_of ~size:ws.ws_n big_x p))
  else begin
    match ws.refresh_jacs with
    | Some refresh ->
        for p = 0 to np - 1 do
          let gp, cp = ws.jacs.(p) in
          if not (refresh (load_state ws big_x p) ~g:gp ~c:cp) then begin
            (* Sparsity drifted at this iterate (a stamp crossed an
               exact zero): rebuild this point from scratch. *)
            Telemetry.count "mpde.assemble.jac_rebuilds";
            ws.jacs.(p) <- ws.ws_sys.jacobians (state_of ~size:ws.ws_n big_x p)
          end
        done
    | None ->
        for p = 0 to np - 1 do
          ws.jacs.(p) <- ws.ws_sys.jacobians (state_of ~size:ws.ws_n big_x p)
        done
  end;
  ws.jacs

let jacobian_ws ws =
  Telemetry.span "mpde.assemble.jacobian_csr" @@ fun () ->
  if Array.length ws.jacs = 0 then
    invalid_arg "Mpde.Assemble.jacobian_ws: call point_jacobians_ws first";
  let n = ws.ws_n and np = ws.ws_np in
  let big = np * n in
  let coo =
    match ws.big_coo with
    | Some c ->
        Sparse.Coo.clear c;
        c
    | None ->
        let c = Sparse.Coo.create ~capacity:(12 * big) big big in
        ws.big_coo <- Some c;
        c
  in
  stamp_big coo ws.ws_scheme ws.ws_grid ~n ~jacs:ws.jacs ~diff_t1:ws.ws_diff_t1
    ~diff_t2:ws.ws_diff_t2;
  match ws.big_jac with
  | Some m when Sparse.Csr.refresh_from_coo m coo ->
      Telemetry.count "mpde.assemble.numeric_refreshes";
      m
  | _ ->
      Telemetry.count "mpde.assemble.symbolic_builds";
      let m = Sparse.Csr.of_coo coo in
      ws.big_jac <- Some m;
      m
