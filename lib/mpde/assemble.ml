type system = {
  size : int;
  eval_f : Linalg.Vec.t -> Linalg.Vec.t;
  eval_q : Linalg.Vec.t -> Linalg.Vec.t;
  jacobians : Linalg.Vec.t -> Sparse.Csr.t * Sparse.Csr.t;
  source_at : t1:float -> t2:float -> Linalg.Vec.t;
}

let of_mna ~shear mna =
  let dae = Circuit.Mna.dae mna in
  {
    size = Circuit.Mna.size mna;
    eval_f = dae.Numeric.Dae.eval_f;
    eval_q = dae.Numeric.Dae.eval_q;
    jacobians = dae.Numeric.Dae.jacobians;
    source_at =
      (fun ~t1 ~t2 -> Circuit.Mna.source_with mna ~phase_of:(Shear.phase shear ~t1 ~t2));
  }

let of_dae ~shear (dae : Numeric.Dae.t) =
  ignore shear;
  {
    size = dae.Numeric.Dae.size;
    eval_f = dae.Numeric.Dae.eval_f;
    eval_q = dae.Numeric.Dae.eval_q;
    jacobians = dae.Numeric.Dae.jacobians;
    source_at = (fun ~t1 ~t2:_ -> dae.Numeric.Dae.source t1);
  }

type scheme = Backward | Central_t1 | Spectral_t1 | Spectral_both

let spectral_ok (g : Grid.t) = g.Grid.n1 >= 3 && g.Grid.n1 mod 2 = 1

let spectral_both_ok (g : Grid.t) =
  spectral_ok g && g.Grid.n2 >= 3 && g.Grid.n2 mod 2 = 1

let diff_matrix_t1 (g : Grid.t) =
  Numeric.Spectral.diff_matrix g.Grid.n1 (Shear.t1_period g.Grid.shear)

let diff_matrix_t2 (g : Grid.t) =
  Numeric.Spectral.diff_matrix g.Grid.n2 (Shear.t2_period g.Grid.shear)

let state_of ~size big_x p = Array.sub big_x (p * size) size

let sources_on_grid sys (g : Grid.t) =
  Array.init (Grid.points g) (fun p ->
      let i = p mod g.Grid.n1 and j = p / g.Grid.n1 in
      sys.source_at ~t1:(Grid.t1_of g i) ~t2:(Grid.t2_of g j))

let residual scheme sys (g : Grid.t) ~sources big_x =
  Telemetry.span "mpde.assemble.residual" @@ fun () ->
  let n = sys.size in
  let np = Grid.points g in
  let qs = Array.init np (fun p -> sys.eval_q (state_of ~size:n big_x p)) in
  let r = Array.make (np * n) 0.0 in
  let diff_t1 =
    match scheme with
    | Spectral_t1 ->
        if not (spectral_ok g) then
          invalid_arg "Mpde.Assemble: Spectral_t1 needs odd n1 >= 3";
        Some (diff_matrix_t1 g)
    | Spectral_both ->
        if not (spectral_both_ok g) then
          invalid_arg "Mpde.Assemble: Spectral_both needs odd n1 and n2 >= 3";
        Some (diff_matrix_t1 g)
    | Backward | Central_t1 -> None
  in
  let diff_t2 =
    match scheme with Spectral_both -> Some (diff_matrix_t2 g) | Backward | Central_t1 | Spectral_t1 -> None
  in
  for p = 0 to np - 1 do
    let i = p mod g.Grid.n1 and j = p / g.Grid.n1 in
    let f = sys.eval_f (state_of ~size:n big_x p) in
    let b = sources.(p) in
    let q = qs.(p) in
    let q_jm1 = qs.(Grid.point_index g i (j - 1)) in
    (match scheme with
    | Backward ->
        let q_im1 = qs.(Grid.point_index g (i - 1) j) in
        for v = 0 to n - 1 do
          r.((p * n) + v) <-
            ((q.(v) -. q_im1.(v)) /. g.Grid.h1)
            +. ((q.(v) -. q_jm1.(v)) /. g.Grid.h2)
            +. f.(v) -. b.(v)
        done
    | Central_t1 ->
        let q_im1 = qs.(Grid.point_index g (i - 1) j) in
        let q_ip1 = qs.(Grid.point_index g (i + 1) j) in
        for v = 0 to n - 1 do
          r.((p * n) + v) <-
            ((q_ip1.(v) -. q_im1.(v)) /. (2.0 *. g.Grid.h1))
            +. ((q.(v) -. q_jm1.(v)) /. g.Grid.h2)
            +. f.(v) -. b.(v)
        done
    | Spectral_t1 ->
        let d = Option.get diff_t1 in
        for v = 0 to n - 1 do
          let dq = ref 0.0 in
          for l = 0 to g.Grid.n1 - 1 do
            let dil = Linalg.Mat.get d i l in
            if dil <> 0.0 then dq := !dq +. (dil *. qs.(Grid.point_index g l j).(v))
          done;
          r.((p * n) + v) <-
            !dq +. ((q.(v) -. q_jm1.(v)) /. g.Grid.h2) +. f.(v) -. b.(v)
        done
    | Spectral_both ->
        let d1 = Option.get diff_t1 and d2 = Option.get diff_t2 in
        for v = 0 to n - 1 do
          let dq = ref 0.0 in
          for l = 0 to g.Grid.n1 - 1 do
            let dil = Linalg.Mat.get d1 i l in
            if dil <> 0.0 then dq := !dq +. (dil *. qs.(Grid.point_index g l j).(v))
          done;
          for m = 0 to g.Grid.n2 - 1 do
            let djm = Linalg.Mat.get d2 j m in
            if djm <> 0.0 then dq := !dq +. (djm *. qs.(Grid.point_index g i m).(v))
          done;
          r.((p * n) + v) <- !dq +. f.(v) -. b.(v)
        done)
  done;
  r

let point_jacobians sys (g : Grid.t) big_x =
  Telemetry.span "mpde.assemble.jacobians" @@ fun () ->
  Array.init (Grid.points g) (fun p -> sys.jacobians (state_of ~size:sys.size big_x p))

let add_block coo ~row_base ~col_base ~scale (m : Sparse.Csr.t) =
  if scale <> 0.0 then
    for i = 0 to m.Sparse.Csr.rows - 1 do
      Sparse.Csr.iter_row m i (fun j v ->
          Sparse.Coo.add coo (row_base + i) (col_base + j) (scale *. v))
    done

let jacobian_csr scheme (g : Grid.t) ~size ~jacs =
  Telemetry.span "mpde.assemble.jacobian_csr" @@ fun () ->
  let n = size in
  let np = Grid.points g in
  let big = np * n in
  let coo = Sparse.Coo.create ~capacity:(12 * big) big big in
  let diff_t1 =
    match scheme with
    | Spectral_t1 | Spectral_both -> Some (diff_matrix_t1 g)
    | Backward | Central_t1 -> None
  in
  let diff_t2 =
    match scheme with Spectral_both -> Some (diff_matrix_t2 g) | Backward | Central_t1 | Spectral_t1 -> None
  in
  for p = 0 to np - 1 do
    let i = p mod g.Grid.n1 and j = p / g.Grid.n1 in
    let gp, cp = jacs.(p) in
    let row_base = p * n in
    (* t2 coupling: backward difference except for the bi-spectral scheme *)
    (match scheme with
    | Backward | Central_t1 | Spectral_t1 ->
        let p_jm1 = Grid.point_index g i (j - 1) in
        let _, c_jm1 = jacs.(p_jm1) in
        add_block coo ~row_base ~col_base:row_base ~scale:(1.0 /. g.Grid.h2) cp;
        add_block coo ~row_base ~col_base:(p_jm1 * n) ~scale:(-1.0 /. g.Grid.h2) c_jm1
    | Spectral_both ->
        let d2 = Option.get diff_t2 in
        for m = 0 to g.Grid.n2 - 1 do
          let djm = Linalg.Mat.get d2 j m in
          if djm <> 0.0 then begin
            let pm = Grid.point_index g i m in
            let _, c_m = jacs.(pm) in
            add_block coo ~row_base ~col_base:(pm * n) ~scale:djm c_m
          end
        done);
    (* conductive part on the diagonal block *)
    add_block coo ~row_base ~col_base:row_base ~scale:1.0 gp;
    (match scheme with
    | Backward ->
        let p_im1 = Grid.point_index g (i - 1) j in
        let _, c_im1 = jacs.(p_im1) in
        add_block coo ~row_base ~col_base:row_base ~scale:(1.0 /. g.Grid.h1) cp;
        add_block coo ~row_base ~col_base:(p_im1 * n) ~scale:(-1.0 /. g.Grid.h1) c_im1
    | Central_t1 ->
        let p_im1 = Grid.point_index g (i - 1) j in
        let p_ip1 = Grid.point_index g (i + 1) j in
        let _, c_im1 = jacs.(p_im1) in
        let _, c_ip1 = jacs.(p_ip1) in
        add_block coo ~row_base ~col_base:(p_ip1 * n) ~scale:(0.5 /. g.Grid.h1) c_ip1;
        add_block coo ~row_base ~col_base:(p_im1 * n) ~scale:(-0.5 /. g.Grid.h1) c_im1
    | Spectral_t1 | Spectral_both ->
        let d = Option.get diff_t1 in
        for l = 0 to g.Grid.n1 - 1 do
          let dil = Linalg.Mat.get d i l in
          if dil <> 0.0 then begin
            let pl = Grid.point_index g l j in
            let _, c_l = jacs.(pl) in
            add_block coo ~row_base ~col_base:(pl * n) ~scale:dil c_l
          end
        done)
  done;
  Sparse.Csr.of_coo coo
