module Vec = Linalg.Vec

type result = {
  t2_values : float array;
  columns : Vec.t array array;
  newton_iterations : int;
  converged : bool;
}

let frozen_column = Fast_column.frozen_column

let initial_column ?max_newton ?tol ?seed sys ~n1 ~shear =
  Fast_column.frozen_column ?max_newton ?tol ?seed sys ~n1 ~shear ~t2:0.0

let run ?max_newton ?tol ?x_init ?seed ~(system : Assemble.system) ~shear ~n1 ~t2_stop
    ~steps () =
  if steps < 1 then invalid_arg "Envelope_follow.run: steps must be positive";
  Telemetry.span "envelope.run" @@ fun () ->
  let h2 = t2_stop /. float_of_int steps in
  let column0 =
    match x_init with
    | Some c -> c
    | None -> initial_column ?max_newton ?tol ?seed system ~n1 ~shear
  in
  let t2_values = Array.init (steps + 1) (fun s -> float_of_int s *. h2) in
  let columns = Array.make (steps + 1) column0 in
  let iterations = ref 0 in
  let converged = ref true in
  for s = 1 to steps do
    let column, iters, ok =
      Telemetry.span "envelope.step" @@ fun () ->
      Fast_column.march_step ?max_newton ?tol system ~n1 ~shear ~t2:t2_values.(s) ~h2
        ~prev:columns.(s - 1)
    in
    iterations := !iterations + iters;
    if not ok then converged := false;
    columns.(s) <- column
  done;
  { t2_values; columns; newton_iterations = !iterations; converged = !converged }

let envelope_of result ~unknown ~mode =
  let sample column =
    let values = Array.map (fun x -> x.(unknown)) column in
    match mode with
    | Extract.Mean_t1 -> Vec.mean values
    | Extract.Peak_t1 -> Array.fold_left Float.max neg_infinity values
    | Extract.At_t1 frac -> Numeric.Interp.linear_periodic values frac
  in
  Array.map sample result.columns
