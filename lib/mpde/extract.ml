let surface (sol : Solver.solution) ~unknown =
  let g = sol.Solver.grid in
  Array.init g.Grid.n1 (fun i ->
      Array.init g.Grid.n2 (fun j -> (Solver.state_at sol ~i ~j).(unknown)))

let surface_of_node sol mna node =
  surface sol ~unknown:(Circuit.Mna.node_index mna node)

let differential_surface sol mna node_a node_b =
  let sa = surface_of_node sol mna node_a and sb = surface_of_node sol mna node_b in
  Array.mapi (fun i row -> Array.mapi (fun j v -> v -. sb.(i).(j)) row) sa

type envelope_mode = At_t1 of float | Mean_t1 | Peak_t1

let envelope ?(mode = Mean_t1) (sol : Solver.solution) ~values =
  let g = sol.Solver.grid in
  Array.init g.Grid.n2 (fun j ->
      match mode with
      | Mean_t1 ->
          let s = ref 0.0 in
          for i = 0 to g.Grid.n1 - 1 do
            s := !s +. values.(i).(j)
          done;
          !s /. float_of_int g.Grid.n1
      | Peak_t1 ->
          let m = ref neg_infinity in
          for i = 0 to g.Grid.n1 - 1 do
            if values.(i).(j) > !m then m := values.(i).(j)
          done;
          !m
      | At_t1 frac ->
          let column = Array.init g.Grid.n1 (fun i -> values.(i).(j)) in
          Numeric.Interp.linear_periodic column frac)

let envelope_times (sol : Solver.solution) =
  let g = sol.Solver.grid in
  Array.init g.Grid.n2 (Grid.t2_of g)

let diagonal (sol : Solver.solution) ~values ~t_start ~t_stop ~samples =
  let g = sol.Solver.grid in
  let t1p = Shear.t1_period g.Grid.shear and t2p = Shear.t2_period g.Grid.shear in
  let times =
    Array.init samples (fun k ->
        t_start +. ((t_stop -. t_start) *. float_of_int k /. float_of_int (max 1 (samples - 1))))
  in
  let series =
    Array.map
      (fun t -> Numeric.Interp.bilinear_periodic values (t /. t1p) (t /. t2p))
      times
  in
  (times, series)

(* Diagonal-consistency residual: the MPDE's defining property is that
   the diagonal x̂(t, t) of the multi-time surface solves the one-time
   circuit equations. Integrate a short reference transient — starting
   from the surface's own corner state x̂(0, 0), so the trajectory is
   already on the steady-state orbit — with trapezoidal steps fine
   enough to be near-exact, and compare against the interpolated
   diagonal. A residual at the discretization-error level certifies the
   surface; a large one flags an inconsistent (e.g. off-lattice or
   under-resolved) solution. *)
let diagonal_residual ?(periods = 2) ?(steps_per_period = 128)
    (sol : Solver.solution) ~unknown =
  let g = sol.Solver.grid in
  let sys = sol.Solver.system in
  let size = sys.Assemble.size in
  let t1p = Shear.t1_period g.Grid.shear in
  let t_stop = float_of_int periods *. t1p in
  let steps = periods * steps_per_period in
  let h = t_stop /. float_of_int steps in
  let x = ref (Solver.state_at sol ~i:0 ~j:0) in
  let reference = Array.make (steps + 1) 0.0 in
  reference.(0) <- !x.(unknown);
  let ok = ref true in
  (try
     for k = 1 to steps do
       let t = float_of_int k *. h in
       let b_new = sys.Assemble.source_at ~t1:t ~t2:t in
       let b_old = sys.Assemble.source_at ~t1:(t -. h) ~t2:(t -. h) in
       let q_old = sys.Assemble.eval_q !x in
       let f_old = sys.Assemble.eval_f !x in
       (* Trapezoidal step:
          (q(y) − q(xₖ))/h + (f(y) + f(xₖ))/2 = (b(tₖ₊₁) + b(tₖ))/2 *)
       let residual y =
         let qy = sys.Assemble.eval_q y and fy = sys.Assemble.eval_f y in
         Array.init size (fun i ->
             ((qy.(i) -. q_old.(i)) /. h)
             +. (0.5 *. (fy.(i) +. f_old.(i)))
             -. (0.5 *. (b_new.(i) +. b_old.(i))))
       in
       let solve_linearized y r =
         let gj, cj = sys.Assemble.jacobians y in
         let j =
           Sparse.Csr.add
             (Sparse.Csr.scale (1.0 /. h) cj)
             (Sparse.Csr.scale 0.5 gj)
         in
         Sparse.Splu.solve (Sparse.Splu.factor j) r
       in
       let y, stats =
         Numeric.Newton.solve
           { Numeric.Newton.residual; solve_linearized }
           !x
       in
       if not (Numeric.Newton.converged stats) then begin
         ok := false;
         raise Exit
       end;
       x := y;
       reference.(k) <- y.(unknown)
     done
   with Exit -> ());
  if not !ok then nan
  else begin
    let values = surface sol ~unknown in
    let _, diag =
      diagonal sol ~values ~t_start:0.0 ~t_stop ~samples:(steps + 1)
    in
    let err = ref 0.0 in
    let lo = ref infinity and hi = ref neg_infinity in
    Array.iteri
      (fun k v ->
        if v < !lo then lo := v;
        if v > !hi then hi := v;
        let e = Float.abs (v -. diag.(k)) in
        if e > !err then err := e)
      reference;
    let swing = !hi -. !lo in
    let scale =
      if swing > 1e-12 then swing
      else Float.max (Float.max (Float.abs !hi) (Float.abs !lo)) 1.0
    in
    !err /. scale
  end

let mean_t1_waveform values =
  let n1 = Array.length values in
  let n2 = Array.length values.(0) in
  Array.init n2 (fun j ->
      let s = ref 0.0 in
      for i = 0 to n1 - 1 do
        s := !s +. values.(i).(j)
      done;
      !s /. float_of_int n1)

let t2_harmonic_amplitude ~values ~harmonic =
  Numeric.Fft.amplitude_at (mean_t1_waveform values) harmonic

let conversion_gain_db ~values ~rf_amplitude ~harmonic =
  let a = t2_harmonic_amplitude ~values ~harmonic in
  20.0 *. log10 (a /. rf_amplitude)

type mixing_product = {
  k1 : int;
  k2 : int;
  amplitude : float;
  frequency : float;
}

(* 2-D DFT by FFT along each axis; the surface is real, so only the
   half-plane k1 ∈ [0, n1/2] is enumerated, with k2 signed. *)
let mixing_spectrum (sol : Solver.solution) ~values ?(top = 12) () =
  let g = sol.Solver.grid in
  let n1 = g.Grid.n1 and n2 = g.Grid.n2 in
  let f1 = Shear.fast_freq g.Grid.shear and fd = Shear.slow_freq g.Grid.shear in
  (* FFT along j for every i. *)
  let rows =
    Array.init n1 (fun i ->
        Numeric.Fft.fft (Linalg.Cvec.of_real (Array.init n2 (fun j -> values.(i).(j)))))
  in
  (* FFT along i for every k2. *)
  let spectrum =
    Array.init n2 (fun k2 -> Numeric.Fft.fft (Array.init n1 (fun i -> rows.(i).(k2))))
  in
  let norm = float_of_int (n1 * n2) in
  let products = ref [] in
  for k1 = 0 to n1 / 2 do
    for k2_raw = 0 to n2 - 1 do
      let k2 = if k2_raw <= n2 / 2 then k2_raw else k2_raw - n2 in
      (* Skip the conjugate duplicates on the k1 = 0 (and even-n1
         Nyquist) lines, where (0, k2) and (0, −k2) describe the same
         real component. *)
      let self_line = k1 = 0 || (n1 mod 2 = 0 && 2 * k1 = n1) in
      if not (self_line && k2 < 0) then begin
        let z = spectrum.(k2_raw).(k1) in
        let self_k2 = k2 = 0 || (n2 mod 2 = 0 && 2 * abs k2 = n2) in
        let scale = if self_line && self_k2 then 1.0 else 2.0 in
        let amplitude = scale *. Complex.norm z /. norm in
        let frequency = (float_of_int k1 *. f1) +. (float_of_int k2 *. fd) in
        products := { k1; k2; amplitude; frequency } :: !products
      end
    done
  done;
  let sorted =
    List.sort (fun a b -> compare b.amplitude a.amplitude) !products
  in
  List.filteri (fun idx _ -> idx < top) sorted

let thd ~values ?max_harmonic () =
  let baseband = mean_t1_waveform values in
  let spectrum = Numeric.Fft.real_harmonics baseband in
  let kmax =
    match max_harmonic with
    | Some k -> min k (Array.length spectrum - 1)
    | None -> Array.length spectrum - 1
  in
  let fundamental = fst spectrum.(1) in
  let s = ref 0.0 in
  for k = 2 to kmax do
    let a = fst spectrum.(k) in
    s := !s +. (a *. a)
  done;
  sqrt !s /. fundamental
