(** Shared clock for every timing measurement in the solver stack.

    All engines read wall time through [wall] (a monotonic clock: OS
    [CLOCK_MONOTONIC] via bechamel's stub, immune to NTP slews) and CPU
    time through [cpu], so tests can [install] a fake source and make
    budgets, ladder stage timings, and telemetry spans fully
    deterministic. Blocking delays (retry backoff) go through [sleep]
    for the same reason: a manual source turns them into instantaneous
    clock advances. *)

type source = {
  wall : unit -> float;  (** seconds; only differences are meaningful *)
  cpu : unit -> float;  (** process CPU seconds *)
  sleep : float -> unit;
      (** block for the given seconds ([<= 0] is a no-op) *)
}

val monotonic : source
(** The real clocks: [CLOCK_MONOTONIC] for wall, [Sys.time] for CPU,
    [Unix.sleepf] for sleep. *)

val install : source -> unit
(** Replace the process-global clock source (tests). *)

val uninstall : unit -> unit
(** Restore [monotonic]. *)

val source : unit -> source
(** The currently installed source (so wrappers — e.g. fault-injected
    slowdowns — can decorate rather than replace it). *)

val overridden : unit -> bool
(** [true] when a source other than [monotonic] is installed — i.e.
    the process runs in deterministic-replay mode. Recorders use this
    to suppress measurements that no fake source can replay (GC
    allocation deltas), keeping fake-clock traces byte-reproducible. *)

val wall : unit -> float
(** Current wall time from the installed source. *)

val cpu : unit -> float
(** Current CPU time from the installed source. *)

val sleep : float -> unit
(** Block via the installed source. *)

val manual : ?start:float -> unit -> source * (float -> unit)
(** [manual ()] is a fake source plus an [advance] function that moves
    both wall and CPU time forward by the given number of seconds; its
    [sleep] advances the same fake time instead of blocking. *)
