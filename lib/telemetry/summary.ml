type node = {
  name : string;
  calls : int;
  wall : float;
  cpu : float;
  self : float;
  children : node list;
}

type t = {
  duration : float;
  roots : node list;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Core.histogram) list;
}

(* Mutable aggregation node: spans with the same name under the same
   parent merge into one entry. *)
type acc = {
  a_name : string;
  mutable a_calls : int;
  mutable a_wall : float;
  mutable a_cpu : float;
  a_children : (string, acc) Hashtbl.t;
  a_order : string Queue.t;  (** first-seen order, for stable output *)
}

let acc_create name =
  {
    a_name = name;
    a_calls = 0;
    a_wall = 0.0;
    a_cpu = 0.0;
    a_children = Hashtbl.create 4;
    a_order = Queue.create ();
  }

let child_of parent name =
  match Hashtbl.find_opt parent.a_children name with
  | Some a -> a
  | None ->
      let a = acc_create name in
      Hashtbl.add parent.a_children name a;
      Queue.add name parent.a_order;
      a

let rec freeze acc =
  let children =
    Queue.fold
      (fun l name -> freeze (Hashtbl.find acc.a_children name) :: l)
      [] acc.a_order
    |> List.sort (fun a b -> compare b.wall a.wall)
  in
  let child_wall = List.fold_left (fun s c -> s +. c.wall) 0.0 children in
  {
    name = acc.a_name;
    calls = acc.a_calls;
    wall = acc.a_wall;
    cpu = acc.a_cpu;
    self = Float.max 0.0 (acc.a_wall -. child_wall);
    children;
  }

let of_snapshot (s : Core.snapshot) =
  let root = acc_create "" in
  (* Stack of (acc, begin_wall, begin_cpu); the event log is well-nested
     by construction (snapshot closes open spans). *)
  let stack = ref [] in
  Array.iter
    (fun ev ->
      match ev with
      | Core.Span_begin { name; wall; cpu; _ } ->
          let parent = match !stack with (a, _, _) :: _ -> a | [] -> root in
          stack := (child_of parent name, wall, cpu) :: !stack
      | Core.Span_end { wall; cpu; _ } -> (
          match !stack with
          | (a, w0, c0) :: rest ->
              a.a_calls <- a.a_calls + 1;
              a.a_wall <- a.a_wall +. (wall -. w0);
              a.a_cpu <- a.a_cpu +. (cpu -. c0);
              stack := rest
          | [] -> ()))
    s.events;
  {
    duration = s.duration;
    roots = (freeze root).children;
    counters = s.counters;
    gauges = s.gauges;
    histograms = s.histograms;
  }

let total_wall t = List.fold_left (fun s n -> s +. n.wall) 0.0 t.roots

let find t name =
  let rec search = function
    | [] -> None
    | n :: rest ->
        if n.name = name then Some n
        else (
          match search n.children with Some _ as r -> r | None -> search rest)
  in
  search t.roots

let pp ppf t =
  let open Format in
  fprintf ppf "@[<v>span summary (%.3fs instrumented, %.3fs in spans)@,"
    t.duration (total_wall t);
  let rec pp_node depth n =
    fprintf ppf "  %-*s%-*s calls=%-6d total=%8.3fs  self=%8.3fs  cpu=%8.3fs@,"
      (2 * depth) "" (max 4 (36 - (2 * depth))) n.name n.calls n.wall n.self
      n.cpu;
    List.iter (pp_node (depth + 1)) n.children
  in
  List.iter (pp_node 0) t.roots;
  if t.counters <> [] then begin
    fprintf ppf "counters@,";
    List.iter (fun (k, v) -> fprintf ppf "  %-36s %d@," k v) t.counters
  end;
  if t.gauges <> [] then begin
    fprintf ppf "gauges@,";
    List.iter (fun (k, v) -> fprintf ppf "  %-36s %g@," k v) t.gauges
  end;
  if t.histograms <> [] then begin
    fprintf ppf "histograms@,";
    List.iter
      (fun (k, (h : Core.histogram)) ->
        fprintf ppf
          "  %-36s n=%d mean=%g min=%g max=%g p50=%g p90=%g p99=%g@," k h.count
          (if h.count > 0 then h.sum /. float_of_int h.count else 0.0)
          h.min h.max (Core.quantile h 0.50) (Core.quantile h 0.90)
          (Core.quantile h 0.99))
      t.histograms
  end;
  fprintf ppf "@]"

let add_json buf t =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rec add_node n =
    add "{\"name\":\"%s\",\"calls\":%d,\"wall\":%s,\"self\":%s,\"cpu\":%s"
      (Json.escape n.name) n.calls (Json.float n.wall) (Json.float n.self)
      (Json.float n.cpu);
    add ",\"children\":[";
    List.iteri
      (fun i c ->
        if i > 0 then add ",";
        add_node c)
      n.children;
    add "]}"
  in
  add "{\"duration\":%s,\"spans\":[" (Json.float t.duration);
  List.iteri
    (fun i n ->
      if i > 0 then add ",";
      add_node n)
    t.roots;
  add "],\"counters\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then add ",";
      add "\"%s\":%d" (Json.escape k) v)
    t.counters;
  add "},\"gauges\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then add ",";
      add "\"%s\":%s" (Json.escape k) (Json.float v))
    t.gauges;
  add "},\"histograms\":{";
  List.iteri
    (fun i (k, (h : Core.histogram)) ->
      if i > 0 then add ",";
      add
        "\"%s\":{\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
        (Json.escape k) h.count (Json.float h.sum) (Json.float h.min)
        (Json.float h.max)
        (Json.float (Core.quantile h 0.50))
        (Json.float (Core.quantile h 0.90))
        (Json.float (Core.quantile h 0.99)))
    t.histograms;
  add "}}"

let to_json_string t =
  let buf = Buffer.create 1024 in
  add_json buf t;
  Buffer.contents buf
