(** End-of-solve span summary: the event log folded into a tree of
    per-span aggregates (call count, total/self wall time, CPU time),
    plus the final counter, gauge, and histogram values. This is what
    [--timings] prints and what [Resilience.Report] embeds as the
    ["telemetry"] section of its JSON. *)

type node = {
  name : string;
  calls : int;
  wall : float;  (** total wall seconds across all calls *)
  cpu : float;
  self : float;  (** [wall] minus the children's wall time *)
  children : node list;  (** ordered by decreasing wall time *)
}

type t = {
  duration : float;  (** wall seconds covered by the snapshot *)
  roots : node list;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * Core.histogram) list;
}

val of_snapshot : Core.snapshot -> t

val total_wall : t -> float
(** Sum of the root spans' wall time. *)

val find : t -> string -> node option
(** Depth-first search for the first node with the given name. *)

val pp : Format.formatter -> t -> unit
(** Human-readable tree, e.g. what [rfss … --timings] prints. *)

val add_json : Buffer.t -> t -> unit

val to_json_string : t -> string
