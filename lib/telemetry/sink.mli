(** Machine-readable exporters for a captured {!Core.snapshot}.

    - {!write_jsonl}: one JSON object per line — span begin/end events
      in order, then final counter/gauge/histogram values. Greppable
      and streamable into log pipelines.
    - {!write_chrome}: Chrome [trace_event] JSON (the
      ["traceEvents"] array form), loadable in [chrome://tracing] or
      {{:https://ui.perfetto.dev}Perfetto}. Spans become B/E duration
      events; counters become a final "C" sample. *)

val write_jsonl : out_channel -> Core.snapshot -> unit

val write_chrome : out_channel -> Core.snapshot -> unit
