(* Library entry point: the recorder API lives in Core (included here so
   call sites read [Telemetry.span]/[Telemetry.count]); the clock and
   the exporters are exposed as submodules. *)

include Core
module Clock = Clock
module Summary = Summary
module Sink = Sink
module Merge = Merge
module Runtime = Runtime
