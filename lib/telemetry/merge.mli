(** Cross-domain trace aggregation: fold snapshots captured on
    different recorders (one per OCaml 5 domain, or one per sweep job)
    into a single Chrome [trace_event] document in which every domain
    renders as its own named lane.

    Recorders timestamp events relative to their own enable instant;
    {!part.base} carries that instant on the shared absolute clock
    ({!Core.enabled_at}), so the merge re-bases everything onto one
    axis (the earliest part starts at ts 0). Emission order is
    deterministic: parts sorted by (pid, tid, base, label), metadata
    first — which makes merged traces byte-comparable across runs on
    the fake clock. *)

type part = {
  pid : int;  (** Chrome process lane (usually the OS pid) *)
  tid : int;  (** thread lane — one per domain/worker *)
  thread_name : string;  (** rendered by Perfetto next to the lane *)
  label : string option;
      (** when set, a thread-scoped instant event ("i") marking the
          part boundary — e.g. the sweep job label *)
  base : float;
      (** absolute wall seconds of the snapshot's t = 0
          ({!Core.enabled_at} of the recorder that captured it) *)
  snapshot : Core.snapshot;
}

val write_chrome :
  ?process_name:string ->
  ?extra:(string * string) list ->
  out_channel ->
  part list ->
  unit
(** Write one [{"traceEvents":[...]}] document. [process_name]
    (default ["rfss"]) labels each pid; [extra] appends pre-rendered
    JSON values as additional top-level keys (e.g. the ["rfss"] run
    summary that [rfss report] reads) — trace viewers ignore them. *)
