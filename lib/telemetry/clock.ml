type source = {
  wall : unit -> float;
  cpu : unit -> float;
  sleep : float -> unit;
}

let monotonic =
  {
    wall = (fun () -> Int64.to_float (Monotonic_clock.now ()) *. 1e-9);
    cpu = Sys.time;
    sleep = (fun dt -> if dt > 0.0 then Unix.sleepf dt);
  }

let current = ref monotonic

let install s = current := s

let uninstall () = current := monotonic

let source () = !current

let overridden () = !current != monotonic

let wall () = (!current).wall ()

let cpu () = (!current).cpu ()

let sleep dt = (!current).sleep dt

let manual ?(start = 0.0) () =
  let now = ref start in
  ( {
      wall = (fun () -> !now);
      cpu = (fun () -> !now);
      (* Sleeping on a fake clock just advances it: retry backoff under
         test takes zero real time but stays visible in wall readings. *)
      sleep = (fun dt -> if dt > 0.0 then now := !now +. dt);
    },
    fun dt -> now := !now +. dt )
