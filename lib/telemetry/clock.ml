type source = { wall : unit -> float; cpu : unit -> float }

let monotonic =
  {
    wall = (fun () -> Int64.to_float (Monotonic_clock.now ()) *. 1e-9);
    cpu = Sys.time;
  }

let current = ref monotonic

let install s = current := s

let uninstall () = current := monotonic

let wall () = (!current).wall ()

let cpu () = (!current).cpu ()

let manual ?(start = 0.0) () =
  let now = ref start in
  ( { wall = (fun () -> !now); cpu = (fun () -> !now) },
    fun dt -> now := !now +. dt )
