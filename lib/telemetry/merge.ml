type part = {
  pid : int;
  tid : int;
  thread_name : string;
  label : string option;
  base : float;
  snapshot : Core.snapshot;
}

(* One Chrome trace_event document from many per-domain snapshots.

   Each part carries the absolute wall instant its snapshot's t=0
   corresponds to ([Core.enabled_at] of the recorder that produced it),
   so events from recorders enabled at different times land on one
   shared time axis: ts = (base - min base + event wall) in µs. Output
   is fully deterministic — parts are sorted by (pid, tid, base, label)
   and every event keeps its snapshot order — so two runs on the fake
   clock produce byte-identical traces. *)

let us t = t *. 1e6

let sorted_parts parts =
  List.stable_sort
    (fun a b ->
      match compare a.pid b.pid with
      | 0 -> (
          match compare a.tid b.tid with
          | 0 -> (
              match compare a.base b.base with
              | 0 -> compare a.label b.label
              | c -> c)
          | c -> c)
      | c -> c)
    parts

let dedup_keep_order key xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    xs

let write_chrome ?(process_name = "rfss") ?(extra = []) oc parts =
  let parts = sorted_parts parts in
  let t0 =
    List.fold_left (fun acc p -> Float.min acc p.base) infinity parts
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let out fmt = Printf.fprintf oc fmt in
  let first = ref true in
  let event fmt =
    if !first then first := false else out ",\n";
    out fmt
  in
  out "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  (* Metadata first: one process_name per pid, one thread_name per
     (pid, tid). Perfetto uses these to label the lanes. *)
  List.iter
    (fun p ->
      event "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"process_name\",\"args\":{\"name\":\"%s\"}}"
        p.pid p.tid (Json.escape process_name))
    (dedup_keep_order (fun p -> p.pid) parts);
  List.iter
    (fun p ->
      event "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}"
        p.pid p.tid (Json.escape p.thread_name))
    (dedup_keep_order (fun p -> (p.pid, p.tid)) parts);
  List.iter
    (fun p ->
      let ts w = Json.float (us (p.base -. t0 +. w)) in
      (match p.label with
      | Some label ->
          (* Thread-scoped instant event marking the part (job)
             boundary at its first recorded instant. *)
          event
            "{\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"cat\":\"job\",\"name\":\"%s\",\"ts\":%s}"
            p.pid p.tid (Json.escape label) (ts 0.0)
      | None -> ());
      Array.iter
        (fun ev ->
          match ev with
          | Core.Span_begin { name; wall; _ } ->
              event
                "{\"ph\":\"B\",\"pid\":%d,\"tid\":%d,\"cat\":\"solve\",\"name\":\"%s\",\"ts\":%s}"
                p.pid p.tid (Json.escape name) (ts wall)
          | Core.Span_end { name; wall; _ } ->
              event
                "{\"ph\":\"E\",\"pid\":%d,\"tid\":%d,\"cat\":\"solve\",\"name\":\"%s\",\"ts\":%s}"
                p.pid p.tid (Json.escape name) (ts wall))
        p.snapshot.Core.events;
      List.iter
        (fun (k, v) ->
          event
            "{\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"ts\":%s,\"args\":{\"value\":%d}}"
            p.pid p.tid (Json.escape k)
            (ts p.snapshot.Core.duration)
            v)
        p.snapshot.Core.counters;
      List.iter
        (fun (k, v) ->
          event
            "{\"ph\":\"C\",\"pid\":%d,\"tid\":%d,\"name\":\"%s\",\"ts\":%s,\"args\":{\"value\":%s}}"
            p.pid p.tid (Json.escape k)
            (ts p.snapshot.Core.duration)
            (Json.float v))
        p.snapshot.Core.gauges)
    parts;
  out "\n]";
  (* Extra top-level sections (pre-rendered JSON values): trace viewers
     ignore unknown keys, while [rfss report] reads them back. *)
  List.iter (fun (key, json) -> out ",\"%s\":%s" (Json.escape key) json) extra;
  out "}\n"
