(** Domain-local solve telemetry: hierarchical spans, monotonic
    counters, gauges, and value histograms.

    Disabled (the default) every entry point is a single match on a
    [ref] — effectively free, so the whole solver stack stays
    instrumented unconditionally. [enable] installs a fresh recorder;
    spans then capture wall and CPU timestamps from {!Clock} (relative
    to the enable instant) into an in-memory event log that the sinks
    ({!Sink}, {!Summary}) render after the fact. Counters, gauges, and
    histograms accumulate in hash tables rather than the event log so
    hot-path ticks (one per GMRES iteration, per dense LU factor, …)
    stay cheap even when enabled.

    The recorder lives in {!Domain.DLS}, so each OCaml 5 domain carries
    its own independent registry: [enable]/[snapshot]/[disable] on a
    worker domain of {!Engine.Sweep}'s pool never interleaves spans or
    races counters with the main domain's recorder. Within one domain
    the API remains single-threaded by design, like the solvers it
    instruments. *)

type event =
  | Span_begin of {
      id : int;
      parent : int;  (** id of the enclosing span, or -1 at top level *)
      name : string;
      wall : float;
      cpu : float;
    }
  | Span_end of { id : int; name : string; wall : float; cpu : float }

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : int array;
      (** per-bucket sample counts on the fixed log layout below;
          length {!bucket_count} *)
}

val bucket_count : int
(** Number of buckets in every histogram: an underflow bucket, 3 per
    decade from 1e-9 to 1e3, and an overflow bucket. *)

val bucket_le : int -> float
(** Inclusive upper bound of bucket [i] ([infinity] for the last). *)

val bucket_index : float -> int
(** Index of the bucket a sample falls into (NaN, zero and negative
    values land in the underflow bucket). *)

val quantile : histogram -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0..1]) from the bucket
    counts: geometric midpoint of the bucket holding the target rank,
    clamped to [[h.min, h.max]]. NaN on an empty histogram. Resolution
    is one bucket (≈2.2x in value at 3 buckets/decade). *)

type snapshot = {
  events : event array;  (** well-nested: open spans are closed at capture *)
  duration : float;  (** wall seconds from [enable] to capture *)
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** last written value, sorted *)
  histograms : (string * histogram) list;  (** sorted *)
}

val enable : unit -> unit
(** Start recording with a fresh, empty recorder. *)

val disable : unit -> unit
(** Stop recording and drop all recorded data. *)

val enabled : unit -> bool

val enabled_at : unit -> float option
(** Absolute {!Clock.wall} reading captured by [enable] — the instant
    all recorded span timestamps are relative to. Lets a merge step
    place snapshots from different recorders (domains) on one time
    axis. [None] when disabled. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] as a child of the innermost open span.
    Exception-safe: the span is closed (and the exception re-raised)
    when [f] raises. When disabled this is just [f ()]. *)

val span_begin : string -> int
(** Open a span without scoping; returns its id (or -1 when disabled).
    Must be closed with {!span_end} in LIFO order. *)

val span_end : int -> unit

val count : ?by:int -> string -> unit
(** Add [by] (default 1) to a named monotonic counter. *)

val gauge : string -> float -> unit
(** Record the latest value of a named quantity (e.g. LU fill-in). *)

val observe : string -> float -> unit
(** Feed one sample into a named value histogram. *)

val merge_histogram : string -> histogram -> unit
(** Fold a pre-accumulated histogram (e.g. GC pauses from the
    {!Runtime} monitor, or another domain's snapshot) into the named
    accumulator, bucket by bucket. No-op when disabled or empty. *)

val with_alloc_gauges : string -> (unit -> 'a) -> 'a
(** [with_alloc_gauges prefix f] runs [f] and records the allocation it
    caused on this domain as gauges [prefix ^ ".minor_words"],
    [".major_words"] and [".promoted_words"] ([Gc.quick_stat] deltas,
    in words). No-op overhead when recording is disabled, and skipped
    entirely under an overridden clock ({!Clock.overridden}) — GC
    deltas are not replayable, so deterministic-mode traces omit
    them. *)

val mark : unit -> int
(** Position in the event log; pass to [snapshot ~since] to summarize
    only the events of one solve. Returns 0 when disabled. *)

val snapshot : ?since:int -> unit -> snapshot option
(** Capture the events from [since] (default: the beginning) to now
    without disturbing recording. Open spans are closed at the capture
    instant in the returned copy. [None] when disabled. *)
