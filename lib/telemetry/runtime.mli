(** Runtime profiling hooks: a self-monitoring OCaml 5
    [Runtime_events] consumer that folds the runtime's own GC phase
    spans into {!Core.histogram}s, per ring buffer (= per domain).

    Usage: [start] before the work under measurement (it switches the
    runtime's event collection on and opens an in-process cursor),
    [poll] after — and periodically during long runs, the ring buffers
    are finite — then read [stats] or fold everything into the current
    telemetry recorder with [observe_into_telemetry].

    Only the two top-level GC phases are timed — [EV_MINOR] (a whole
    minor collection, a genuine mutator pause) and [EV_MAJOR] (one
    major slice) — because their sub-phases nest inside them and would
    double-count wall time. All durations are in seconds. *)

type t

type stats = {
  minor_pause : Core.histogram;  (** seconds per minor collection *)
  major_pause : Core.histogram;  (** seconds per major slice *)
  minor_collections : int;
  major_slices : int;
  domains_seen : int;  (** distinct ring buffers that emitted events *)
  domain_spawns : int;  (** EV_DOMAIN_SPAWN lifecycle events *)
  lost_events : int;  (** ring overwrites before the consumer caught up *)
}

val start : unit -> t option
(** Switch on runtime event collection and open a cursor on this
    process's own ring buffers. [None] when the runtime refuses (e.g.
    ring creation failed) — callers degrade to no GC attribution. *)

val poll : t -> unit
(** Drain pending events into the accumulators (bounded: at most ~256k
    events per call, so a hot ring cannot wedge the caller). *)

val stats : t -> stats
(** Aggregate over every ring seen so far. Call [poll] first. *)

val per_ring : t -> (int * stats) list
(** Per-ring (per-domain) breakdown, sorted by ring id. *)

val observe_into_telemetry : ?prefix:string -> t -> unit
(** Fold [stats] into the current domain's recorder (no-op when
    disabled): histograms [<prefix>.minor_pause_seconds] /
    [.major_pause_seconds], gauges [.minor_collections],
    [.major_slices], [.domains_seen], [.lost_events], and
    [.minor_pause_p99] / [.major_pause_p99] when samples exist.
    Default prefix ["gc"]. *)

val stop : t -> unit
(** Free the cursor. Safe to call twice; [poll] becomes a no-op. *)
