(* Self-monitoring consumer over OCaml 5 Runtime_events: the process
   subscribes to its own ring buffers and folds GC phase spans into
   bucketed pause histograms, per ring (= per domain). Arm before the
   work, [poll] after (and optionally during); [stats] aggregates.

   Phase accounting deliberately tracks only the two top-level phases —
   EV_MINOR (a whole minor collection, a real mutator pause) and
   EV_MAJOR (one major slice) — because their sub-phases
   (EV_MINOR_LOCAL_ROOTS, EV_MAJOR_SWEEP, …) nest inside them and
   would double-count the same wall time. *)

type ring = {
  ring_id : int;
  mutable minor_collections : int;
  mutable major_slices : int;
  mutable minor_ns : int64;  (** open EV_MINOR begin timestamp, or -1 *)
  mutable major_ns : int64;
  minor_pause : acc;
  major_pause : acc;
}

and acc = {
  mutable a_count : int;
  mutable a_sum : float;
  mutable a_min : float;
  mutable a_max : float;
  a_buckets : int array;
}

let acc_create () =
  {
    a_count = 0;
    a_sum = 0.0;
    a_min = infinity;
    a_max = neg_infinity;
    a_buckets = Array.make Core.bucket_count 0;
  }

let acc_add a v =
  a.a_count <- a.a_count + 1;
  a.a_sum <- a.a_sum +. v;
  a.a_min <- Float.min a.a_min v;
  a.a_max <- Float.max a.a_max v;
  a.a_buckets.(Core.bucket_index v) <- a.a_buckets.(Core.bucket_index v) + 1

let acc_freeze a : Core.histogram =
  {
    Core.count = a.a_count;
    sum = a.a_sum;
    min = (if a.a_count > 0 then a.a_min else 0.0);
    max = (if a.a_count > 0 then a.a_max else 0.0);
    buckets = Array.copy a.a_buckets;
  }

let acc_merge ~into:a (b : acc) =
  if b.a_count > 0 then begin
    a.a_count <- a.a_count + b.a_count;
    a.a_sum <- a.a_sum +. b.a_sum;
    a.a_min <- Float.min a.a_min b.a_min;
    a.a_max <- Float.max a.a_max b.a_max;
    Array.iteri (fun i n -> a.a_buckets.(i) <- a.a_buckets.(i) + n) b.a_buckets
  end

type t = {
  cursor : Runtime_events.cursor;
  mutable callbacks : Runtime_events.Callbacks.t;
  rings : (int, ring) Hashtbl.t;
  mutable domain_spawns : int;
  mutable lost_events : int;
  mutable freed : bool;
}

type stats = {
  minor_pause : Core.histogram;  (** seconds per minor collection *)
  major_pause : Core.histogram;  (** seconds per major slice *)
  minor_collections : int;
  major_slices : int;
  domains_seen : int;
  domain_spawns : int;
  lost_events : int;
}

let ring_of t id =
  match Hashtbl.find_opt t.rings id with
  | Some r -> r
  | None ->
      let r =
        {
          ring_id = id;
          minor_collections = 0;
          major_slices = 0;
          minor_ns = -1L;
          major_ns = -1L;
          minor_pause = acc_create ();
          major_pause = acc_create ();
        }
      in
      Hashtbl.add t.rings id r;
      r

let seconds_between ns0 ns1 =
  Int64.to_float (Int64.sub ns1 ns0) *. 1e-9

let start () =
  match
    let () = Runtime_events.start () in
    Runtime_events.create_cursor None
  with
  | exception _ -> None
  | cursor ->
      let rings = Hashtbl.create 8 in
      let t =
        {
          cursor;
          callbacks = Runtime_events.Callbacks.create ();
          rings;
          domain_spawns = 0;
          lost_events = 0;
          freed = false;
        }
      in
      let runtime_begin id ts phase =
        let ns = Runtime_events.Timestamp.to_int64 ts in
        let r = ring_of t id in
        match phase with
        | Runtime_events.EV_MINOR -> r.minor_ns <- ns
        | Runtime_events.EV_MAJOR -> r.major_ns <- ns
        | _ -> ()
      in
      let runtime_end id ts phase =
        let ns = Runtime_events.Timestamp.to_int64 ts in
        let r = ring_of t id in
        match phase with
        | Runtime_events.EV_MINOR ->
            if r.minor_ns >= 0L then begin
              acc_add r.minor_pause (seconds_between r.minor_ns ns);
              r.minor_collections <- r.minor_collections + 1;
              r.minor_ns <- -1L
            end
        | Runtime_events.EV_MAJOR ->
            if r.major_ns >= 0L then begin
              acc_add r.major_pause (seconds_between r.major_ns ns);
              r.major_slices <- r.major_slices + 1;
              r.major_ns <- -1L
            end
        | _ -> ()
      in
      let lifecycle id _ts kind _arg =
        ignore (ring_of t id);
        match kind with
        | Runtime_events.EV_DOMAIN_SPAWN ->
            t.domain_spawns <- t.domain_spawns + 1
        | _ -> ()
      in
      let lost_events _id n = t.lost_events <- t.lost_events + n in
      t.callbacks <-
        Runtime_events.Callbacks.create ~runtime_begin ~runtime_end ~lifecycle
          ~lost_events ();
      Some t

let poll t =
  if not t.freed then
    (* Drain in bounded batches so one poll can't spin forever on a
       ring that fills as fast as it is read. *)
    let rec drain budget =
      if budget > 0 then
        let n = Runtime_events.read_poll t.cursor t.callbacks (Some 4096) in
        if n >= 4096 then drain (budget - 1)
    in
    drain 64

let stats t =
  let minor = acc_create () and major = acc_create () in
  let minors = ref 0 and majors = ref 0 in
  Hashtbl.iter
    (fun _ (r : ring) ->
      acc_merge ~into:minor r.minor_pause;
      acc_merge ~into:major r.major_pause;
      minors := !minors + r.minor_collections;
      majors := !majors + r.major_slices)
    t.rings;
  {
    minor_pause = acc_freeze minor;
    major_pause = acc_freeze major;
    minor_collections = !minors;
    major_slices = !majors;
    domains_seen = Hashtbl.length t.rings;
    domain_spawns = t.domain_spawns;
    lost_events = t.lost_events;
  }

let per_ring t =
  Hashtbl.fold
    (fun id (r : ring) acc ->
      ( id,
        {
          minor_pause = acc_freeze r.minor_pause;
          major_pause = acc_freeze r.major_pause;
          minor_collections = r.minor_collections;
          major_slices = r.major_slices;
          domains_seen = 1;
          domain_spawns = 0;
          lost_events = 0;
        } )
      :: acc)
    t.rings []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let stop t =
  if not t.freed then begin
    t.freed <- true;
    (try Runtime_events.free_cursor t.cursor with _ -> ())
  end

let observe_into_telemetry ?(prefix = "gc") t =
  if Core.enabled () then begin
    let s = stats t in
    Core.merge_histogram (prefix ^ ".minor_pause_seconds") s.minor_pause;
    Core.merge_histogram (prefix ^ ".major_pause_seconds") s.major_pause;
    Core.gauge (prefix ^ ".minor_collections")
      (float_of_int s.minor_collections);
    Core.gauge (prefix ^ ".major_slices") (float_of_int s.major_slices);
    Core.gauge (prefix ^ ".domains_seen") (float_of_int s.domains_seen);
    Core.gauge (prefix ^ ".lost_events") (float_of_int s.lost_events);
    if s.major_pause.Core.count > 0 then
      Core.gauge
        (prefix ^ ".major_pause_p99")
        (Core.quantile s.major_pause 0.99);
    if s.minor_pause.Core.count > 0 then
      Core.gauge
        (prefix ^ ".minor_pause_p99")
        (Core.quantile s.minor_pause 0.99)
  end
