let write_jsonl oc (s : Core.snapshot) =
  let line fmt = Printf.fprintf oc (fmt ^^ "\n") in
  Array.iter
    (fun ev ->
      match ev with
      | Core.Span_begin { id; parent; name; wall; cpu } ->
          line "{\"ev\":\"begin\",\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"t\":%s,\"cpu\":%s}"
            id parent (Json.escape name) (Json.float wall) (Json.float cpu)
      | Core.Span_end { id; name; wall; cpu } ->
          line "{\"ev\":\"end\",\"id\":%d,\"name\":\"%s\",\"t\":%s,\"cpu\":%s}" id
            (Json.escape name) (Json.float wall) (Json.float cpu))
    s.events;
  List.iter
    (fun (k, v) ->
      line "{\"ev\":\"counter\",\"name\":\"%s\",\"total\":%d}" (Json.escape k) v)
    s.counters;
  List.iter
    (fun (k, v) ->
      line "{\"ev\":\"gauge\",\"name\":\"%s\",\"value\":%s}" (Json.escape k)
        (Json.float v))
    s.gauges;
  List.iter
    (fun (k, (h : Core.histogram)) ->
      line
        "{\"ev\":\"histogram\",\"name\":\"%s\",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s}"
        (Json.escape k) h.count (Json.float h.sum) (Json.float h.min)
        (Json.float h.max))
    s.histograms;
  line "{\"ev\":\"summary\",\"duration\":%s}" (Json.float s.duration)

(* Chrome trace_event format: timestamps in microseconds relative to the
   recorder's enable instant. *)
let write_chrome oc (s : Core.snapshot) =
  let us t = t *. 1e6 in
  let out fmt = Printf.fprintf oc fmt in
  out "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  out
    "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"rfss\"}}";
  Array.iter
    (fun ev ->
      match ev with
      | Core.Span_begin { name; wall; _ } ->
          out
            ",\n{\"ph\":\"B\",\"pid\":1,\"tid\":1,\"cat\":\"solve\",\"name\":\"%s\",\"ts\":%s}"
            (Json.escape name) (Json.float (us wall))
      | Core.Span_end { name; wall; _ } ->
          out
            ",\n{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"cat\":\"solve\",\"name\":\"%s\",\"ts\":%s}"
            (Json.escape name) (Json.float (us wall)))
    s.events;
  List.iter
    (fun (k, v) ->
      out
        ",\n{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"name\":\"%s\",\"ts\":%s,\"args\":{\"value\":%d}}"
        (Json.escape k) (Json.float (us s.duration)) v)
    s.counters;
  List.iter
    (fun (k, v) ->
      out
        ",\n{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"name\":\"%s\",\"ts\":%s,\"args\":{\"value\":%s}}"
        (Json.escape k) (Json.float (us s.duration)) (Json.float v))
    s.gauges;
  out "\n]}\n"
