let write_jsonl oc (s : Core.snapshot) =
  let line fmt = Printf.fprintf oc (fmt ^^ "\n") in
  Array.iter
    (fun ev ->
      match ev with
      | Core.Span_begin { id; parent; name; wall; cpu } ->
          line "{\"ev\":\"begin\",\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"t\":%s,\"cpu\":%s}"
            id parent (Json.escape name) (Json.float wall) (Json.float cpu)
      | Core.Span_end { id; name; wall; cpu } ->
          line "{\"ev\":\"end\",\"id\":%d,\"name\":\"%s\",\"t\":%s,\"cpu\":%s}" id
            (Json.escape name) (Json.float wall) (Json.float cpu))
    s.events;
  List.iter
    (fun (k, v) ->
      line "{\"ev\":\"counter\",\"name\":\"%s\",\"total\":%d}" (Json.escape k) v)
    s.counters;
  List.iter
    (fun (k, v) ->
      line "{\"ev\":\"gauge\",\"name\":\"%s\",\"value\":%s}" (Json.escape k)
        (Json.float v))
    s.gauges;
  List.iter
    (fun (k, (h : Core.histogram)) ->
      line
        "{\"ev\":\"histogram\",\"name\":\"%s\",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
        (Json.escape k) h.count (Json.float h.sum) (Json.float h.min)
        (Json.float h.max)
        (Json.float (Core.quantile h 0.50))
        (Json.float (Core.quantile h 0.90))
        (Json.float (Core.quantile h 0.99)))
    s.histograms;
  line "{\"ev\":\"summary\",\"duration\":%s}" (Json.float s.duration)

(* Chrome trace_event format: timestamps in microseconds relative to
   the recorder's enable instant. A single-snapshot trace is just the
   degenerate one-part merge ({!Merge} is the full multi-domain
   writer); names pass through the same JSON escaping as the merged
   path, so quotes/backslashes in span names can't corrupt the file. *)
let write_chrome oc (s : Core.snapshot) =
  Merge.write_chrome oc
    [
      {
        Merge.pid = 1;
        tid = 1;
        thread_name = "main";
        label = None;
        base = 0.0;
        snapshot = s;
      };
    ]
