type event =
  | Span_begin of {
      id : int;
      parent : int;
      name : string;
      wall : float;
      cpu : float;
    }
  | Span_end of { id : int; name : string; wall : float; cpu : float }

type histogram = { count : int; sum : float; min : float; max : float }

type snapshot = {
  events : event array;
  duration : float;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram) list;
}

type hist_acc = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type state = {
  mutable events_rev : event list;
  mutable len : int;
  mutable next_id : int;
  mutable stack : (int * string) list;  (** open spans, innermost first *)
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist_acc) Hashtbl.t;
  wall0 : float;
  cpu0 : float;
}

(* One recorder per domain. A process-global recorder would be unsound
   under Engine.Sweep's domain pool: the span stack assumes LIFO
   discipline within one thread of control, and the counter/gauge hash
   tables are not thread-safe — concurrent solves would interleave span
   begin/end events and race on table buckets. Domain-local storage
   gives every worker domain its own independent registry; enabling
   recording on one domain never observes or disturbs another's. *)
let state_key : state option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let state () = Domain.DLS.get state_key

let enabled () = !(state ()) <> None

let enable () =
  state ()
  := Some
       {
         events_rev = [];
         len = 0;
         next_id = 0;
         stack = [];
         counters = Hashtbl.create 32;
         gauges = Hashtbl.create 16;
         hists = Hashtbl.create 16;
         wall0 = Clock.wall ();
         cpu0 = Clock.cpu ();
       }

let disable () = state () := None

let push st e =
  st.events_rev <- e :: st.events_rev;
  st.len <- st.len + 1

let wall_of st = Clock.wall () -. st.wall0

let cpu_of st = Clock.cpu () -. st.cpu0

let begin_on st name =
  let id = st.next_id in
  st.next_id <- id + 1;
  let parent = match st.stack with (p, _) :: _ -> p | [] -> -1 in
  push st (Span_begin { id; parent; name; wall = wall_of st; cpu = cpu_of st });
  st.stack <- (id, name) :: st.stack;
  id

let end_on st id =
  (* Pop to (and including) [id]; closes any unbalanced inner spans so
     the log stays well-nested even if a span_end was skipped. *)
  let rec pop = function
    | (id', name) :: rest ->
        push st (Span_end { id = id'; name; wall = wall_of st; cpu = cpu_of st });
        st.stack <- rest;
        if id' <> id then pop rest
    | [] -> ()
  in
  if List.exists (fun (id', _) -> id' = id) st.stack then pop st.stack

let span name f =
  match !(state ()) with
  | None -> f ()
  | Some st -> (
      let id = begin_on st name in
      match f () with
      | y ->
          (match !(state ()) with Some st' when st' == st -> end_on st id | _ -> ());
          y
      | exception e ->
          (match !(state ()) with Some st' when st' == st -> end_on st id | _ -> ());
          raise e)

let span_begin name =
  match !(state ()) with None -> -1 | Some st -> begin_on st name

let span_end id =
  if id >= 0 then
    match !(state ()) with None -> () | Some st -> end_on st id

let count ?(by = 1) name =
  match !(state ()) with
  | None -> ()
  | Some st -> (
      match Hashtbl.find_opt st.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add st.counters name (ref by))

let gauge name v =
  match !(state ()) with
  | None -> ()
  | Some st -> (
      match Hashtbl.find_opt st.gauges name with
      | Some r -> r := v
      | None -> Hashtbl.add st.gauges name (ref v))

(* Allocation gauges from Gc.quick_stat deltas: cheap (no heap walk),
   and [quick_stat] itself allocates nothing. Words, not bytes, so the
   numbers are word-size independent. *)
let with_alloc_gauges prefix f =
  if not (enabled ()) then f ()
  else begin
    let s0 = Gc.quick_stat () in
    let finish () =
      let s1 = Gc.quick_stat () in
      gauge (prefix ^ ".minor_words") (s1.Gc.minor_words -. s0.Gc.minor_words);
      gauge (prefix ^ ".major_words") (s1.Gc.major_words -. s0.Gc.major_words);
      gauge (prefix ^ ".promoted_words")
        (s1.Gc.promoted_words -. s0.Gc.promoted_words)
    in
    match f () with
    | y ->
        finish ();
        y
    | exception e ->
        finish ();
        raise e
  end

let observe name v =
  match !(state ()) with
  | None -> ()
  | Some st -> (
      match Hashtbl.find_opt st.hists name with
      | Some h ->
          h.h_count <- h.h_count + 1;
          h.h_sum <- h.h_sum +. v;
          h.h_min <- Float.min h.h_min v;
          h.h_max <- Float.max h.h_max v
      | None ->
          Hashtbl.add st.hists name
            { h_count = 1; h_sum = v; h_min = v; h_max = v })

let mark () = match !(state ()) with None -> 0 | Some st -> st.len

let sorted_bindings tbl value_of =
  Hashtbl.fold (fun k v acc -> (k, value_of v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot ?(since = 0) () =
  match !(state ()) with
  | None -> None
  | Some st ->
      let wall = wall_of st and cpu = cpu_of st in
      (* Synthesize ends for still-open spans, innermost first, so the
         captured log is always well-nested. *)
      let closing =
        List.map (fun (id, name) -> Span_end { id; name; wall; cpu }) st.stack
      in
      let tail =
        (* events_rev is newest-first; keep the newest [len - since]. *)
        let rec take n l acc =
          if n <= 0 then acc
          else
            match l with [] -> acc | e :: rest -> take (n - 1) rest (e :: acc)
        in
        take (st.len - since) st.events_rev []
      in
      let events = Array.of_list (tail @ closing) in
      (* Drop the closing events of spans opened before [since]: their
         Span_begin is missing from the window, so summaries would
         misattribute them. *)
      let open_ids = Hashtbl.create 8 in
      Array.iter
        (function
          | Span_begin { id; _ } -> Hashtbl.replace open_ids id () | _ -> ())
        events;
      let events =
        Array.of_seq
          (Seq.filter
             (function
               | Span_end { id; _ } -> Hashtbl.mem open_ids id
               | Span_begin _ -> true)
             (Array.to_seq events))
      in
      Some
        {
          events;
          duration = wall;
          counters = sorted_bindings st.counters (fun r -> !r);
          gauges = sorted_bindings st.gauges (fun r -> !r);
          histograms =
            sorted_bindings st.hists (fun h ->
                { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max });
        }
