type event =
  | Span_begin of {
      id : int;
      parent : int;
      name : string;
      wall : float;
      cpu : float;
    }
  | Span_end of { id : int; name : string; wall : float; cpu : float }

(* Fixed log-spaced buckets shared by every histogram: 3 per decade
   from 1e-9 to 1e3 (covers nanosecond GC pauses through kilosecond
   solves and dimensionless residual ratios alike), plus an underflow
   bucket at the bottom and an overflow bucket at the top. A fixed
   layout keeps [observe] allocation-free after the first sample and
   makes histograms from different domains mergeable bucket-by-bucket. *)
let buckets_per_decade = 3

let bucket_decades = 12

let bucket_lo = 1e-9

let bucket_count = (buckets_per_decade * bucket_decades) + 2

let bucket_le i =
  if i >= bucket_count - 1 then infinity
  else bucket_lo *. (10.0 ** (float_of_int i /. float_of_int buckets_per_decade))

let bucket_index v =
  if not (v > bucket_lo) (* incl. nan, zero, negatives *) then 0
  else
    let k =
      int_of_float
        (Float.ceil (float_of_int buckets_per_decade *. Float.log10 (v /. bucket_lo)))
    in
    if k < 1 then 1 else if k > bucket_count - 2 then bucket_count - 1 else k

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : int array;
}

let quantile h q =
  if h.count <= 0 then Float.nan
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.count)))
    in
    let b = ref 0 and cum = ref h.buckets.(0) in
    while !cum < rank && !b < bucket_count - 1 do
      incr b;
      cum := !cum + h.buckets.(!b)
    done;
    (* Geometric bucket midpoint, clamped to the observed range so the
       degenerate cases (single sample, under/overflow buckets) stay
       honest. *)
    let lo = if !b = 0 then h.min else bucket_le (!b - 1) in
    let hi = if !b = bucket_count - 1 then h.max else bucket_le !b in
    let mid = if lo > 0.0 && Float.is_finite hi then sqrt (lo *. hi) else hi in
    Float.min h.max (Float.max h.min mid)
  end

type snapshot = {
  events : event array;
  duration : float;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram) list;
}

type hist_acc = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

type state = {
  mutable events_rev : event list;
  mutable len : int;
  mutable next_id : int;
  mutable stack : (int * string) list;  (** open spans, innermost first *)
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist_acc) Hashtbl.t;
  wall0 : float;
  cpu0 : float;
}

(* One recorder per domain. A process-global recorder would be unsound
   under Engine.Sweep's domain pool: the span stack assumes LIFO
   discipline within one thread of control, and the counter/gauge hash
   tables are not thread-safe — concurrent solves would interleave span
   begin/end events and race on table buckets. Domain-local storage
   gives every worker domain its own independent registry; enabling
   recording on one domain never observes or disturbs another's. *)
let state_key : state option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let state () = Domain.DLS.get state_key

let enabled () = !(state ()) <> None

let enable () =
  state ()
  := Some
       {
         events_rev = [];
         len = 0;
         next_id = 0;
         stack = [];
         counters = Hashtbl.create 32;
         gauges = Hashtbl.create 16;
         hists = Hashtbl.create 16;
         wall0 = Clock.wall ();
         cpu0 = Clock.cpu ();
       }

let disable () = state () := None

let enabled_at () =
  match !(state ()) with None -> None | Some st -> Some st.wall0

let push st e =
  st.events_rev <- e :: st.events_rev;
  st.len <- st.len + 1

let wall_of st = Clock.wall () -. st.wall0

let cpu_of st = Clock.cpu () -. st.cpu0

let begin_on st name =
  let id = st.next_id in
  st.next_id <- id + 1;
  let parent = match st.stack with (p, _) :: _ -> p | [] -> -1 in
  push st (Span_begin { id; parent; name; wall = wall_of st; cpu = cpu_of st });
  st.stack <- (id, name) :: st.stack;
  id

let end_on st id =
  (* Pop to (and including) [id]; closes any unbalanced inner spans so
     the log stays well-nested even if a span_end was skipped. *)
  let rec pop = function
    | (id', name) :: rest ->
        push st (Span_end { id = id'; name; wall = wall_of st; cpu = cpu_of st });
        st.stack <- rest;
        if id' <> id then pop rest
    | [] -> ()
  in
  if List.exists (fun (id', _) -> id' = id) st.stack then pop st.stack

let span name f =
  match !(state ()) with
  | None -> f ()
  | Some st -> (
      let id = begin_on st name in
      match f () with
      | y ->
          (match !(state ()) with Some st' when st' == st -> end_on st id | _ -> ());
          y
      | exception e ->
          (match !(state ()) with Some st' when st' == st -> end_on st id | _ -> ());
          raise e)

let span_begin name =
  match !(state ()) with None -> -1 | Some st -> begin_on st name

let span_end id =
  if id >= 0 then
    match !(state ()) with None -> () | Some st -> end_on st id

let count ?(by = 1) name =
  match !(state ()) with
  | None -> ()
  | Some st -> (
      match Hashtbl.find_opt st.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add st.counters name (ref by))

let gauge name v =
  match !(state ()) with
  | None -> ()
  | Some st -> (
      match Hashtbl.find_opt st.gauges name with
      | Some r -> r := v
      | None -> Hashtbl.add st.gauges name (ref v))

(* Allocation gauges from Gc.quick_stat deltas: cheap (no heap walk),
   and [quick_stat] itself allocates nothing. Words, not bytes, so the
   numbers are word-size independent. *)
let with_alloc_gauges prefix f =
  (* GC deltas are environment measurements no fake clock can replay;
     recording them under an overridden clock would break the byte-
     reproducibility that deterministic traces promise. *)
  if not (enabled ()) || Clock.overridden () then f ()
  else begin
    let s0 = Gc.quick_stat () in
    let finish () =
      let s1 = Gc.quick_stat () in
      gauge (prefix ^ ".minor_words") (s1.Gc.minor_words -. s0.Gc.minor_words);
      gauge (prefix ^ ".major_words") (s1.Gc.major_words -. s0.Gc.major_words);
      gauge (prefix ^ ".promoted_words")
        (s1.Gc.promoted_words -. s0.Gc.promoted_words)
    in
    match f () with
    | y ->
        finish ();
        y
    | exception e ->
        finish ();
        raise e
  end

let observe name v =
  match !(state ()) with
  | None -> ()
  | Some st -> (
      match Hashtbl.find_opt st.hists name with
      | Some h ->
          h.h_count <- h.h_count + 1;
          h.h_sum <- h.h_sum +. v;
          h.h_min <- Float.min h.h_min v;
          h.h_max <- Float.max h.h_max v;
          h.h_buckets.(bucket_index v) <- h.h_buckets.(bucket_index v) + 1
      | None ->
          let b = Array.make bucket_count 0 in
          b.(bucket_index v) <- 1;
          Hashtbl.add st.hists name
            { h_count = 1; h_sum = v; h_min = v; h_max = v; h_buckets = b })

let merge_histogram name (h : histogram) =
  if h.count > 0 then
    match !(state ()) with
    | None -> ()
    | Some st -> (
        match Hashtbl.find_opt st.hists name with
        | Some a ->
            a.h_count <- a.h_count + h.count;
            a.h_sum <- a.h_sum +. h.sum;
            a.h_min <- Float.min a.h_min h.min;
            a.h_max <- Float.max a.h_max h.max;
            Array.iteri
              (fun i n -> a.h_buckets.(i) <- a.h_buckets.(i) + n)
              h.buckets
        | None ->
            Hashtbl.add st.hists name
              {
                h_count = h.count;
                h_sum = h.sum;
                h_min = h.min;
                h_max = h.max;
                h_buckets = Array.copy h.buckets;
              })

let mark () = match !(state ()) with None -> 0 | Some st -> st.len

let sorted_bindings tbl value_of =
  Hashtbl.fold (fun k v acc -> (k, value_of v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot ?(since = 0) () =
  match !(state ()) with
  | None -> None
  | Some st ->
      let wall = wall_of st and cpu = cpu_of st in
      (* Synthesize ends for still-open spans, innermost first, so the
         captured log is always well-nested. *)
      let closing =
        List.map (fun (id, name) -> Span_end { id; name; wall; cpu }) st.stack
      in
      let tail =
        (* events_rev is newest-first; keep the newest [len - since]. *)
        let rec take n l acc =
          if n <= 0 then acc
          else
            match l with [] -> acc | e :: rest -> take (n - 1) rest (e :: acc)
        in
        take (st.len - since) st.events_rev []
      in
      let events = Array.of_list (tail @ closing) in
      (* Drop the closing events of spans opened before [since]: their
         Span_begin is missing from the window, so summaries would
         misattribute them. *)
      let open_ids = Hashtbl.create 8 in
      Array.iter
        (function
          | Span_begin { id; _ } -> Hashtbl.replace open_ids id () | _ -> ())
        events;
      let events =
        Array.of_seq
          (Seq.filter
             (function
               | Span_end { id; _ } -> Hashtbl.mem open_ids id
               | Span_begin _ -> true)
             (Array.to_seq events))
      in
      Some
        {
          events;
          duration = wall;
          counters = sorted_bindings st.counters (fun r -> !r);
          gauges = sorted_bindings st.gauges (fun r -> !r);
          histograms =
            sorted_bindings st.hists (fun h ->
                {
                  count = h.h_count;
                  sum = h.h_sum;
                  min = h.h_min;
                  max = h.h_max;
                  buckets = Array.copy h.h_buckets;
                });
        }
