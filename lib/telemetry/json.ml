(* Minimal JSON emission helpers shared by the sinks: only strings need
   escaping, and only the characters our own span/counter names can
   contain. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float f =
  if Float.is_finite f then Printf.sprintf "%.9e" f
  else
    Printf.sprintf "\"%s\""
      (if Float.is_nan f then "nan" else if f > 0.0 then "inf" else "-inf")
