let is_power_of_two n = n > 0 && n land (n - 1) = 0

let pi = 4.0 *. atan 1.0

(* In-place iterative radix-2 Cooley-Tukey; [sign] is -1 for forward. *)
let radix2_ip (x : Complex.t array) sign =
  let n = Array.length x in
  assert (is_power_of_two n);
  (* Bit-reversal permutation. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let t = x.(i) in
      x.(i) <- x.(!j);
      x.(!j) <- t
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let angle = sign *. 2.0 *. pi /. float_of_int !len in
    let wstep = { Complex.re = cos angle; im = sin angle } in
    let i = ref 0 in
    while !i < n do
      let w = ref Complex.one in
      for k = !i to !i + half - 1 do
        let u = x.(k) and v = Complex.mul !w x.(k + half) in
        x.(k) <- Complex.add u v;
        x.(k + half) <- Complex.sub u v;
        w := Complex.mul !w wstep
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let radix2 x sign =
  let y = Array.copy x in
  radix2_ip y sign;
  y

(* Bluestein chirp-z: express the length-n DFT as a convolution of
   length 2n-1, evaluated with power-of-two FFTs. *)
let bluestein x sign =
  let n = Array.length x in
  let m =
    let rec next p = if p >= (2 * n) - 1 then p else next (2 * p) in
    next 1
  in
  let chirp =
    Array.init n (fun k ->
        let phase = sign *. pi *. float_of_int (k * k mod (2 * n)) /. float_of_int n in
        { Complex.re = cos phase; im = sin phase })
  in
  let a = Array.make m Complex.zero in
  for k = 0 to n - 1 do
    a.(k) <- Complex.mul x.(k) chirp.(k)
  done;
  let b = Array.make m Complex.zero in
  b.(0) <- Complex.conj chirp.(0);
  for k = 1 to n - 1 do
    let v = Complex.conj chirp.(k) in
    b.(k) <- v;
    b.(m - k) <- v
  done;
  radix2_ip a (-1.0);
  radix2_ip b (-1.0);
  for k = 0 to m - 1 do
    a.(k) <- Complex.mul a.(k) b.(k)
  done;
  radix2_ip a 1.0;
  let scale = 1.0 /. float_of_int m in
  Array.init n (fun k ->
      Complex.mul chirp.(k)
        { Complex.re = a.(k).Complex.re *. scale; im = a.(k).Complex.im *. scale })

let transform x sign =
  let n = Array.length x in
  Telemetry.count "fft.transforms";
  if n <= 1 then Array.copy x
  else if is_power_of_two n then radix2 x sign
  else bluestein x sign

let fft x = transform x (-1.0)

let ifft x =
  let n = Array.length x in
  let y = transform x 1.0 in
  let scale = 1.0 /. float_of_int (max n 1) in
  Array.map (fun (z : Complex.t) -> { Complex.re = z.re *. scale; im = z.im *. scale }) y

let dft_naive x =
  let n = Array.length x in
  Array.init n (fun k ->
      let s = ref Complex.zero in
      for j = 0 to n - 1 do
        let phase = -2.0 *. pi *. float_of_int (k * j) /. float_of_int n in
        s :=
          Complex.add !s (Complex.mul x.(j) { Complex.re = cos phase; im = sin phase })
      done;
      !s)

let rfft x = fft (Linalg.Cvec.of_real x)

let real_harmonics x =
  let n = Array.length x in
  if n = 0 then [||]
  else begin
    let spectrum = rfft x in
    let half = n / 2 in
    Array.init (half + 1) (fun k ->
        if k = 0 then (spectrum.(0).Complex.re /. float_of_int n, 0.0)
        else
          let z = spectrum.(k) in
          (2.0 *. Complex.norm z /. float_of_int n, Complex.arg z))
  end

let amplitude_at x k =
  let h = real_harmonics x in
  if k < 0 || k >= Array.length h then invalid_arg "Fft.amplitude_at: harmonic out of range";
  if k = 0 then Float.abs (fst h.(0)) else fst h.(k)
