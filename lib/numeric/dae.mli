(** Differential-algebraic systems in charge/flux form,

    [d/dt q(x) + f(x) = b(t)],

    the canonical circuit-equation shape (paper eq. (1)). Produced by the
    MNA assembler in [lib/circuit] and consumed by the transient
    integrators, the single-time steady-state methods, and the MPDE
    solver. *)

type fast = {
  eval_f_into : Linalg.Vec.t -> Linalg.Vec.t -> unit;
      (** [eval_f_into x out] overwrites [out] with [f(x)] *)
  eval_q_into : Linalg.Vec.t -> Linalg.Vec.t -> unit;
  jacobian_refresher :
    unit -> Linalg.Vec.t -> g:Sparse.Csr.t -> c:Sparse.Csr.t -> bool;
      (** [jacobian_refresher ()] allocates a private stamping workspace
          and returns a closure that rewrites [g]/[c] values in place at
          a new iterate (same float results, bitwise, as a fresh
          [jacobians] call). Returns [false] — values then unspecified —
          when the sparsity pattern at the new iterate differs from the
          given matrices; the caller must rebuild via [jacobians]. Each
          returned closure owns its workspace: create one per solve
          stream (never share across domains). *)
}
(** Allocation-free variants of the evaluation callbacks, for hot paths
    that keep workspaces (the MPDE assembler). Optional: producers that
    cannot provide them leave [fast = None] and callers fall back to
    the allocating closures. *)

type t = {
  size : int;
  eval_f : Linalg.Vec.t -> Linalg.Vec.t;  (** conductive terms [f(x)] *)
  eval_q : Linalg.Vec.t -> Linalg.Vec.t;  (** charge/flux terms [q(x)] *)
  jacobians : Linalg.Vec.t -> Sparse.Csr.t * Sparse.Csr.t;
      (** [(G, C) = (∂f/∂x, ∂q/∂x)], both [size] x [size] *)
  source : float -> Linalg.Vec.t;  (** excitation [b(t)] *)
  fast : fast option;
}

val linear : g:Sparse.Csr.t -> c:Sparse.Csr.t -> source:(float -> Linalg.Vec.t) -> t
(** Convenience constructor for linear time-invariant systems. *)

val residual : t -> x:Linalg.Vec.t -> qdot:Linalg.Vec.t -> t_now:float -> Linalg.Vec.t
(** [residual dae ~x ~qdot ~t_now] is [qdot + f(x) − b(t_now)], useful
    for verifying solutions computed by any method. *)
