type fast = {
  eval_f_into : Linalg.Vec.t -> Linalg.Vec.t -> unit;
  eval_q_into : Linalg.Vec.t -> Linalg.Vec.t -> unit;
  jacobian_refresher :
    unit -> Linalg.Vec.t -> g:Sparse.Csr.t -> c:Sparse.Csr.t -> bool;
}

type t = {
  size : int;
  eval_f : Linalg.Vec.t -> Linalg.Vec.t;
  eval_q : Linalg.Vec.t -> Linalg.Vec.t;
  jacobians : Linalg.Vec.t -> Sparse.Csr.t * Sparse.Csr.t;
  source : float -> Linalg.Vec.t;
  fast : fast option;
}

let linear ~g ~c ~source =
  {
    size = g.Sparse.Csr.rows;
    eval_f = (fun x -> Sparse.Csr.mul_vec g x);
    eval_q = (fun x -> Sparse.Csr.mul_vec c x);
    jacobians = (fun _ -> (g, c));
    source;
    fast =
      Some
        {
          eval_f_into = (fun x out -> Sparse.Csr.mul_vec_into g x out);
          eval_q_into = (fun x out -> Sparse.Csr.mul_vec_into c x out);
          jacobian_refresher =
            (fun () ->
              (* The Jacobians are constant and [jacobians] always hands
                 out the same two matrices, so a refresh is a no-op as
                 long as the caller still holds those instances. *)
              fun _x ~g:g' ~c:c' ->
                g' == g && c' == c);
        };
  }

let residual dae ~x ~qdot ~t_now =
  let f = dae.eval_f x and b = dae.source t_now in
  Array.init dae.size (fun i -> qdot.(i) +. f.(i) -. b.(i))
