(** Damped Newton–Raphson for nonlinear systems [F(x) = 0].

    The linear algebra is abstracted behind a per-iterate solver closure
    so that dense LU, sparse LU, or preconditioned Krylov methods can be
    plugged in. Damping is a simple backtracking line search on the
    residual norm.

    Resilience: a non-finite residual norm terminates immediately with
    [Diverged] (backtracking can never recover from it); a non-finite
    Newton direction is rejected as [Solver_failure] rather than damped;
    and an optional {!Resilience.Budget.t} is ticked once per iteration,
    converting deadline/iteration-cap overruns into a clean [Exhausted]
    outcome instead of an open-ended loop. *)

type problem = {
  residual : Linalg.Vec.t -> Linalg.Vec.t;  (** [F(x)] *)
  solve_linearized : Linalg.Vec.t -> Linalg.Vec.t -> Linalg.Vec.t;
      (** [solve_linearized x r] returns [J(x)⁻¹ r] (an approximation is
          acceptable — convergence degrades gracefully). *)
}

type options = {
  max_iterations : int;  (** default 50 *)
  abs_tol : float;  (** residual infinity-norm target, default 1e-9 *)
  step_tol : float;  (** stop when the damped step is this small, default 1e-12 *)
  max_backtracks : int;  (** line-search halvings, default 12 *)
  min_damping : float;  (** smallest accepted damping factor, default 1/4096 *)
  budget : Resilience.Budget.t option;
      (** ticked once per Newton iteration; default [None] (unbounded) *)
}

val default_options : options

type outcome =
  | Converged
  | Stalled
  | Max_iterations
  | Diverged  (** residual norm went NaN/Inf *)
  | Exhausted of Resilience.Budget.exhaustion  (** budget ran out *)
  | Solver_failure of string

type stats = {
  outcome : outcome;
  iterations : int;
  residual_norm : float;  (** infinity norm of the final residual *)
  backtracks : int;  (** total line-search halvings *)
  residual_history : float array;
      (** chronological residual norms, initial residual first, one per
          accepted iterate; bounded (the oldest samples are dropped past
          512 entries) *)
}

val converged : stats -> bool

val report_outcome : stats -> Resilience.Report.outcome
(** Map final stats onto a structured report outcome. *)

val solve :
  ?options:options ->
  ?on_iteration:(int -> Linalg.Vec.t -> float -> unit) ->
  problem ->
  Linalg.Vec.t ->
  Linalg.Vec.t * stats
(** [solve problem x0] iterates from [x0] (not modified) and returns the
    final iterate with statistics. Exceptions raised by the solver
    closure are captured as [Solver_failure], except
    {!Resilience.Budget.Exhausted} which becomes [Exhausted]. *)

val pp_outcome : Format.formatter -> outcome -> unit
