(** Homotopy/continuation driver (paper §3: “In cases where
    Newton-Raphson did not converge, using continuation reliably obtained
    solutions”).

    The user supplies a family of Newton problems parameterized by
    [lambda ∈ [0, 1]]; the driver tracks the solution path from an easy
    problem ([lambda = 0], e.g. sources off or heavily gmin-loaded) to
    the target ([lambda = 1]) with adaptive step control. *)

type stats = {
  steps_taken : int;  (** accepted continuation steps *)
  steps_rejected : int;
  newton_iterations : int;  (** cumulative across all steps *)
  converged : bool;
  exhausted : Resilience.Budget.exhaustion option;
      (** set when the trace stopped on a budget limit *)
}

val trace :
  ?initial_step:float ->
  ?min_step:float ->
  ?max_step:float ->
  ?max_total_steps:int ->
  ?budget:Resilience.Budget.t ->
  ?newton_options:Newton.options ->
  problem_at:(float -> Newton.problem) ->
  x0:Linalg.Vec.t ->
  unit ->
  Linalg.Vec.t * stats
(** [trace ~problem_at ~x0 ()] starts by solving at [lambda = 0] from
    [x0]. Steps grow by 2x after easy successes and shrink by 4x on
    failure. Defaults: [initial_step = 0.1], [min_step = 1e-6],
    [max_step = 0.5]. Returns the last iterate even on failure
    ([converged = false]).

    [max_total_steps] (default 200) bounds the *total* number of Newton
    solves, accepted or rejected, so a pathological reject/halve cycle
    terminates. [budget], when given, is ticked once per continuation
    step and also installed as the Newton budget (unless
    [newton_options] already carries one); exhaustion halts path
    tracking cleanly with [converged = false] and [exhausted] set. *)
