module Vec = Linalg.Vec
module Budget = Resilience.Budget

type problem = {
  residual : Vec.t -> Vec.t;
  solve_linearized : Vec.t -> Vec.t -> Vec.t;
}

type options = {
  max_iterations : int;
  abs_tol : float;
  step_tol : float;
  max_backtracks : int;
  min_damping : float;
  budget : Budget.t option;
}

let default_options =
  {
    max_iterations = 50;
    abs_tol = 1e-9;
    step_tol = 1e-12;
    max_backtracks = 12;
    min_damping = 1.0 /. 4096.0;
    budget = None;
  }

type outcome =
  | Converged
  | Stalled
  | Max_iterations
  | Diverged
  | Exhausted of Budget.exhaustion
  | Solver_failure of string

type stats = {
  outcome : outcome;
  iterations : int;
  residual_norm : float;
  backtracks : int;
  residual_history : float array;
}

(* The history is bounded so a pathological run with a huge iteration
   cap cannot grow it without bound; 512 comfortably covers every
   configured solver in the repo. *)
let history_capacity = 512

let converged s = s.outcome = Converged

let pp_outcome ppf = function
  | Converged -> Format.fprintf ppf "converged"
  | Stalled -> Format.fprintf ppf "stalled"
  | Max_iterations -> Format.fprintf ppf "max-iterations"
  | Diverged -> Format.fprintf ppf "diverged"
  | Exhausted e -> Format.fprintf ppf "exhausted(%a)" Budget.pp_exhaustion e
  | Solver_failure msg -> Format.fprintf ppf "solver-failure(%s)" msg

let report_outcome stats =
  match stats.outcome with
  | Converged -> Resilience.Report.Converged
  | Exhausted e -> Resilience.Report.Exhausted e
  | o -> Resilience.Report.Failed (Format.asprintf "%a" pp_outcome o)

let solve ?(options = default_options) ?on_iteration problem x0 =
  Telemetry.span "newton" @@ fun () ->
  let problem =
    {
      residual = (fun x -> Telemetry.span "newton.residual" (fun () -> problem.residual x));
      solve_linearized =
        (fun x r ->
          Telemetry.span "newton.linsolve" (fun () -> problem.solve_linearized x r));
    }
  in
  let x = ref (Array.copy x0) in
  let r = ref (problem.residual !x) in
  let rnorm = ref (Vec.norm_inf !r) in
  let iterations = ref 0 in
  let total_backtracks = ref 0 in
  let outcome = ref Max_iterations in
  (* Chronological residual-norm history (initial residual first),
     kept in a bounded ring. *)
  let hist = Array.make history_capacity 0.0 in
  let hist_next = ref 0 in
  let hist_total = ref 0 in
  let record_residual v =
    hist.(!hist_next) <- v;
    hist_next := (!hist_next + 1) mod history_capacity;
    incr hist_total;
    Telemetry.observe "newton.residual" v
  in
  record_residual !rnorm;
  (try
     while !iterations < options.max_iterations do
       Telemetry.span "newton.iter" @@ fun () ->
       (match on_iteration with
       | Some f -> f !iterations !x !rnorm
       | None -> ());
       (* Fault-injection hook: [crash@newton] simulates a domain dying
          mid-iteration (the exception is not rescuable by the ladder —
          deliberately), [slow@newton] ages the budget clock. *)
       Resilience.Faultinject.fire_point Resilience.Faultinject.Newton_iter;
       (* A non-finite residual norm can never backtrack into tolerance:
          every ‖F‖ comparison against NaN is false, so the old code spun
          through max_iterations of useless halvings. Bail out at once. *)
       if not (Float.is_finite !rnorm) then begin
         outcome := Diverged;
         raise Exit
       end;
       if !rnorm <= options.abs_tol then begin
         outcome := Converged;
         raise Exit
       end;
       (match options.budget with
       | Some b -> (
           try Budget.tick_newton b
           with Budget.Exhausted e ->
             outcome := Exhausted e;
             raise Exit)
       | None -> ());
       let delta =
         try problem.solve_linearized !x !r
         with
         | Budget.Exhausted e ->
             outcome := Exhausted e;
             raise Exit
         | e ->
             outcome := Solver_failure (Printexc.to_string e);
             raise Exit
       in
       (* Reject non-finite Newton directions outright: damping a step
          that contains NaN/Inf still contains NaN/Inf. *)
       if not (Resilience.Guard.finite delta) then begin
         outcome := Solver_failure "non-finite Newton step";
         raise Exit
       end;
       (* Backtracking: accept the first damping that reduces ‖F‖∞, or,
          failing that, the smallest tried damping (helps escape regions
          where the residual is momentarily non-monotone). *)
       let damping = ref 1.0 in
       let accepted = ref false in
       let tries = ref 0 in
       let candidate = ref [||] and candidate_res = ref [||] in
       while (not !accepted) && !tries <= options.max_backtracks do
         let trial = Array.copy !x in
         Vec.axpy (-. !damping) delta trial;
         let rt = problem.residual trial in
         let rtnorm = Vec.norm_inf rt in
         if Float.is_finite rtnorm && rtnorm < !rnorm then begin
           accepted := true;
           candidate := trial;
           candidate_res := rt
         end
         else begin
           if Float.is_finite rtnorm && !tries = options.max_backtracks then begin
             (* last resort: take the tiny step anyway *)
             candidate := trial;
             candidate_res := rt
           end;
           damping := !damping /. 2.0;
           incr tries;
           incr total_backtracks
         end
       done;
       if Array.length !candidate = 0 || !damping < options.min_damping /. 2.0 then begin
         outcome := Stalled;
         raise Exit
       end;
       let step_size = !damping *. Vec.norm_inf delta in
       x := !candidate;
       r := !candidate_res;
       rnorm := Vec.norm_inf !r;
       record_residual !rnorm;
       incr iterations;
       if not (Float.is_finite !rnorm) then begin
         outcome := Diverged;
         raise Exit
       end;
       if !rnorm <= options.abs_tol then begin
         outcome := Converged;
         raise Exit
       end;
       if step_size <= options.step_tol then begin
         outcome := (if !rnorm <= options.abs_tol then Converged else Stalled);
         raise Exit
       end
     done
   with Exit -> ());
  Telemetry.count ~by:!iterations "newton.iterations";
  Telemetry.count ~by:!total_backtracks "newton.backtracks";
  Telemetry.observe "newton.final_residual" !rnorm;
  let residual_history =
    let retained = min !hist_total history_capacity in
    let start = if !hist_total <= history_capacity then 0 else !hist_next in
    Array.init retained (fun k -> hist.((start + k) mod history_capacity))
  in
  ( !x,
    {
      outcome = !outcome;
      iterations = !iterations;
      residual_norm = !rnorm;
      backtracks = !total_backtracks;
      residual_history;
    } )
