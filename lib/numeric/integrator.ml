module Vec = Linalg.Vec

type method_ = Backward_euler | Trapezoidal | Bdf2

type step_result = {
  x : Vec.t;
  newton_iterations : int;
  converged : bool;
  outcome : Newton.outcome;
}

(* Build the Newton problem for one implicit step. The residual has the
   generic form  alpha_q-combination of charges + f-combination - source
   terms;  the Jacobian is  (a/h) C(x) + beta G(x). *)
let implicit_step ?(newton_options = Newton.default_options) ~method_ ~(dae : Dae.t)
    ~t_next ~h ~x_prev ?x_prev2 () =
  let q_prev = dae.Dae.eval_q x_prev in
  let b_next = dae.Dae.source t_next in
  let method_ = match (method_, x_prev2) with Bdf2, None -> Backward_euler | m, _ -> m in
  let residual, jac_scale_c, jac_scale_g =
    match method_ with
    | Backward_euler ->
        let r x =
          let q = dae.Dae.eval_q x and f = dae.Dae.eval_f x in
          Array.init dae.Dae.size (fun i ->
              ((q.(i) -. q_prev.(i)) /. h) +. f.(i) -. b_next.(i))
        in
        (r, 1.0 /. h, 1.0)
    | Trapezoidal ->
        let f_prev = dae.Dae.eval_f x_prev in
        let b_prev = dae.Dae.source (t_next -. h) in
        let r x =
          let q = dae.Dae.eval_q x and f = dae.Dae.eval_f x in
          Array.init dae.Dae.size (fun i ->
              ((q.(i) -. q_prev.(i)) /. h)
              +. (0.5 *. (f.(i) -. b_next.(i)))
              +. (0.5 *. (f_prev.(i) -. b_prev.(i))))
        in
        (r, 1.0 /. h, 0.5)
    | Bdf2 ->
        let x_prev2 = Option.get x_prev2 in
        let q_prev2 = dae.Dae.eval_q x_prev2 in
        let r x =
          let q = dae.Dae.eval_q x and f = dae.Dae.eval_f x in
          Array.init dae.Dae.size (fun i ->
              (((1.5 *. q.(i)) -. (2.0 *. q_prev.(i)) +. (0.5 *. q_prev2.(i))) /. h)
              +. f.(i) -. b_next.(i))
        in
        (r, 1.5 /. h, 1.0)
  in
  let solve_linearized x r =
    let g, c = dae.Dae.jacobians x in
    let n = dae.Dae.size in
    let coo = Sparse.Coo.create ~capacity:(Sparse.Csr.nnz g + Sparse.Csr.nnz c) n n in
    for i = 0 to n - 1 do
      Sparse.Csr.iter_row c i (fun j v -> Sparse.Coo.add coo i j (jac_scale_c *. v));
      Sparse.Csr.iter_row g i (fun j v -> Sparse.Coo.add coo i j (jac_scale_g *. v))
    done;
    let jac = Sparse.Csr.of_coo coo in
    Sparse.Splu.solve (Sparse.Splu.factor jac) r
  in
  let x, stats =
    Newton.solve ~options:newton_options
      { Newton.residual; solve_linearized }
      x_prev
  in
  {
    x;
    newton_iterations = stats.Newton.iterations;
    converged = Newton.converged stats;
    outcome = stats.Newton.outcome;
  }

type trace = { times : float array; states : Vec.t array }

(* One macro-step that recursively halves on Newton failure. *)
let robust_step ?newton_options ~method_ ~dae ~t_start ~h ~x_prev ?x_prev2 () =
  let rec attempt ~t_start ~h ~x_prev ~x_prev2 ~depth ~remaining_newton =
    if depth > 8 then failwith "Integrator: Newton failed at minimum step size";
    let r =
      implicit_step ?newton_options ~method_ ~dae ~t_next:(t_start +. h) ~h ~x_prev
        ?x_prev2 ()
    in
    if r.converged then
      { r with newton_iterations = r.newton_iterations + remaining_newton }
    else if (match r.outcome with Newton.Exhausted _ -> true | _ -> false) then
      (* Budget ran out: halving the step would only re-trip it. *)
      { r with newton_iterations = r.newton_iterations + remaining_newton }
    else begin
      let half = h /. 2.0 in
      let mid =
        attempt ~t_start ~h:half ~x_prev ~x_prev2 ~depth:(depth + 1)
          ~remaining_newton:(remaining_newton + r.newton_iterations)
      in
      attempt ~t_start:(t_start +. half) ~h:half ~x_prev:mid.x ~x_prev2:(Some x_prev)
        ~depth:(depth + 1)
        ~remaining_newton:mid.newton_iterations
    end
  in
  attempt ~t_start ~h ~x_prev ~x_prev2 ~depth:0 ~remaining_newton:0

let transient ?newton_options ?(method_ = Backward_euler) ~dae ~x0 ~t0 ~t1 ~steps () =
  if steps <= 0 then invalid_arg "Integrator.transient: steps must be positive";
  let h = (t1 -. t0) /. float_of_int steps in
  let times = Array.make (steps + 1) t0 in
  let states = Array.make (steps + 1) x0 in
  let reached = ref steps in
  (try
     for k = 1 to steps do
       let t_start = t0 +. (float_of_int (k - 1) *. h) in
       let x_prev2 = if k >= 2 then Some states.(k - 2) else None in
       let r = robust_step ?newton_options ~method_ ~dae ~t_start ~h ~x_prev:states.(k - 1) ?x_prev2 () in
       if not r.converged then begin
         (* Only a budget exhaustion reaches here (robust_step raises on
            genuine step failure); hand back the trace so far. *)
         reached := k - 1;
         raise Exit
       end;
       times.(k) <- t0 +. (float_of_int k *. h);
       states.(k) <- r.x
     done
   with Exit -> ());
  if !reached = steps then { times; states }
  else { times = Array.sub times 0 (!reached + 1); states = Array.sub states 0 (!reached + 1) }

let transient_adaptive ?newton_options ?(method_ = Backward_euler) ?(rel_tol = 1e-4)
    ?(abs_tol = 1e-9) ?h_init ?h_min ?h_max ~dae ~x0 ~t0 ~t1 () =
  let span = t1 -. t0 in
  let h_init = Option.value h_init ~default:(span /. 100.0) in
  let h_min = Option.value h_min ~default:(span *. 1e-10) in
  let h_max = Option.value h_max ~default:(span /. 10.0) in
  let times = ref [ t0 ] and states = ref [ x0 ] in
  let order = match method_ with Backward_euler -> 1.0 | Trapezoidal | Bdf2 -> 2.0 in
  let rec advance t x h =
    if t >= t1 -. (1e-12 *. span) then ()
    else begin
      let h = Float.min h (t1 -. t) in
      let full = robust_step ?newton_options ~method_ ~dae ~t_start:t ~h ~x_prev:x () in
      let half1 =
        robust_step ?newton_options ~method_ ~dae ~t_start:t ~h:(h /. 2.0) ~x_prev:x ()
      in
      let half2 =
        robust_step ?newton_options ~method_ ~dae ~t_start:(t +. (h /. 2.0)) ~h:(h /. 2.0)
          ~x_prev:half1.x ()
      in
      if not (full.converged && half1.converged && half2.converged) then
        (* budget exhausted mid-span: return the trace accumulated so far *)
        ()
      else
      let err = ref 0.0 in
      Array.iteri
        (fun i v ->
          let scale = abs_tol +. (rel_tol *. Float.max (Float.abs v) (Float.abs x.(i))) in
          err := Float.max !err (Float.abs (v -. full.x.(i)) /. scale))
        half2.x;
      if !err <= 1.0 || h <= h_min *. 1.0001 then begin
        times := (t +. h) :: !times;
        states := half2.x :: !states;
        let growth = Float.min 4.0 (0.9 *. ((1.0 /. Float.max !err 1e-12) ** (1.0 /. (order +. 1.0)))) in
        advance (t +. h) half2.x (Float.max h_min (Float.min h_max (h *. Float.max 0.5 growth)))
      end
      else advance t x (Float.max h_min (h /. 2.0))
    end
  in
  advance t0 x0 (Float.min h_init h_max);
  {
    times = Array.of_list (List.rev !times);
    states = Array.of_list (List.rev !states);
  }

let sample trace k = Array.map (fun x -> x.(k)) trace.states
