(** Implicit time-stepping for {!Dae.t} systems: backward Euler,
    trapezoidal, and fixed-step BDF2, each solved with damped Newton and
    sparse LU. This is the SPICE-transient substrate and the engine for
    single-time shooting. *)

type method_ = Backward_euler | Trapezoidal | Bdf2

type step_result = {
  x : Linalg.Vec.t;
  newton_iterations : int;
  converged : bool;
  outcome : Newton.outcome;  (** the inner Newton outcome, for triage *)
}

val implicit_step :
  ?newton_options:Newton.options ->
  method_:method_ ->
  dae:Dae.t ->
  t_next:float ->
  h:float ->
  x_prev:Linalg.Vec.t ->
  ?x_prev2:Linalg.Vec.t ->
  unit ->
  step_result
(** Single implicit step to [t_next] of size [h]. [x_prev2] (the state
    one step earlier) is required for [Bdf2]; when absent the step falls
    back to backward Euler. Trapezoidal needs [b] and [f] at the previous
    time, which it recomputes from [x_prev] and [t_next -. h]. *)

type trace = { times : float array; states : Linalg.Vec.t array }

val transient :
  ?newton_options:Newton.options ->
  ?method_:method_ ->
  dae:Dae.t ->
  x0:Linalg.Vec.t ->
  t0:float ->
  t1:float ->
  steps:int ->
  unit ->
  trace
(** Fixed-step transient from [t0] to [t1]; the trace includes the
    initial point, so it has [steps + 1] entries. When a
    {!Resilience.Budget.t} carried in [newton_options] runs out the
    trace is truncated at the last completed step instead (check the
    budget to distinguish).
    @raise Failure if a Newton solve fails even after internal step
    halving (up to 8 levels). *)

val transient_adaptive :
  ?newton_options:Newton.options ->
  ?method_:method_ ->
  ?rel_tol:float ->
  ?abs_tol:float ->
  ?h_init:float ->
  ?h_min:float ->
  ?h_max:float ->
  dae:Dae.t ->
  x0:Linalg.Vec.t ->
  t0:float ->
  t1:float ->
  unit ->
  trace
(** Adaptive stepping with step-doubling local error control. *)

val sample : trace -> int -> float array
(** [sample trace k] extracts the time series of unknown [k]. *)
