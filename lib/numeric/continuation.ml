module Budget = Resilience.Budget

type stats = {
  steps_taken : int;
  steps_rejected : int;
  newton_iterations : int;
  converged : bool;
  exhausted : Budget.exhaustion option;
}

let trace ?(initial_step = 0.1) ?(min_step = 1e-6) ?(max_step = 0.5)
    ?(max_total_steps = 200) ?budget
    ?(newton_options = Newton.default_options) ~problem_at ~x0 () =
  Telemetry.span "continuation" @@ fun () ->
  let newton_options =
    match (budget, newton_options.Newton.budget) with
    | Some b, None -> { newton_options with Newton.budget = Some b }
    | _ -> newton_options
  in
  let newton_iterations = ref 0 in
  let steps_taken = ref 0 and steps_rejected = ref 0 in
  let total_solves = ref 0 in
  let exhausted = ref None in
  (* One Newton solve at a fixed lambda. [`Halt] means stop path
     tracking entirely: the budget ran out (retrying at a smaller step
     would burn what little budget remains on a doomed path) or the
     total-solve cap tripped (a pathological reject/halve cycle must not
     translate into an unbounded number of Newton solves). *)
  let run lambda guess =
    if !total_solves >= max_total_steps then `Halt
    else begin
      incr total_solves;
      Telemetry.gauge "continuation.lambda" lambda;
      match Option.map Budget.exhausted budget with
      | Some (Some e) ->
          exhausted := Some e;
          `Halt
      | _ -> (
          (match budget with
          | Some b -> ( try Budget.tick_continuation b with Budget.Exhausted _ -> ())
          | None -> ());
          let x, stats =
            Newton.solve ~options:newton_options (problem_at lambda) guess
          in
          newton_iterations := !newton_iterations + stats.Newton.iterations;
          match stats.Newton.outcome with
          | Newton.Converged -> `Ok x
          | Newton.Exhausted e ->
              exhausted := Some e;
              `Halt
          | _ -> `Failed)
    end
  in
  let finish x converged =
    Telemetry.count ~by:!steps_taken "continuation.steps";
    Telemetry.count ~by:!steps_rejected "continuation.rejected";
    ( x,
      {
        steps_taken = !steps_taken;
        steps_rejected = !steps_rejected;
        newton_iterations = !newton_iterations;
        converged;
        exhausted = !exhausted;
      } )
  in
  match run 0.0 x0 with
  | `Failed | `Halt -> finish x0 false
  | `Ok x_start ->
      let rec go lambda x step easy_streak =
        if lambda >= 1.0 then (x, true)
        else if step < min_step then (x, false)
        else begin
          let lambda' = Float.min 1.0 (lambda +. step) in
          match run lambda' x with
          | `Ok x' ->
              incr steps_taken;
              let step' =
                if easy_streak >= 1 then Float.min max_step (2.0 *. step) else step
              in
              go lambda' x' step' (easy_streak + 1)
          | `Failed ->
              incr steps_rejected;
              go lambda x (step /. 4.0) 0
          | `Halt -> (x, false)
        end
      in
      let x_final, converged = go 0.0 x_start initial_step 0 in
      finish x_final converged
