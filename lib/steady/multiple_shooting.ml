module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Budget = Resilience.Budget
module Report = Resilience.Report

type result = {
  segment_starts : Vec.t array;
  trace : Numeric.Integrator.trace;
  newton_iterations : int;
  converged : bool;
  residual_norm : float;
  outcome : Report.outcome;
  residual_history : float array;
}

(* Unknowns: the S window-start states stacked. Matching conditions:
   Φ_s(x_s) − x_{s+1 mod S} = 0, giving a block-cyclic Jacobian with
   window monodromies M_s on the diagonal band and −I on the
   super-diagonal (wrapping). Solved directly with the sparse LU —
   S·n stays small. *)
let solve ?(max_newton = 25) ?(tol = 1e-8) ?(steps_per_segment = 50) ?budget ?x0
    ~(dae : Numeric.Dae.t) ~period ~segments () =
  if segments < 1 then invalid_arg "Multiple_shooting.solve: segments must be positive";
  Telemetry.span "multiple-shooting.solve" @@ fun () ->
  let n = dae.Numeric.Dae.size in
  let seed = match x0 with Some x -> x | None -> Array.make n 0.0 in
  let starts = Array.init segments (fun _ -> Array.copy seed) in
  let window = period /. float_of_int segments in
  let newton_options =
    match budget with
    | None -> None
    | Some b -> Some { Numeric.Newton.default_options with budget = Some b }
  in
  let integrate_all starts =
    Array.mapi
      (fun s x0 ->
        Shooting.integrate_with_sensitivity ?newton_options ~dae ~x0
          ~t0:(float_of_int s *. window)
          ~duration:window ~steps:steps_per_segment ())
      starts
  in
  let iterations = ref 0 in
  let converged = ref false in
  let residual = ref infinity in
  let history = ref [] in
  let last_traces = ref [||] in
  let outcome = ref Report.Converged in
  let fail o =
    outcome := o;
    raise Exit
  in
  (try
     while (not !converged) && !iterations < max_newton do
       (match budget with
       | Some b -> (
           try Budget.tick_newton b with Budget.Exhausted e -> fail (Report.Exhausted e))
       | None -> ());
       (* Integrate every window from its current start. *)
       let results =
         try integrate_all starts with
         | Budget.Exhausted e -> fail (Report.Exhausted e)
         | Failure msg -> fail (Report.Failed msg)
       in
       last_traces := results;
       (* Matching defects. *)
       let defects =
         Array.init segments (fun s ->
             let trace, _ = results.(s) in
             let endpoint = trace.Numeric.Integrator.states.(steps_per_segment) in
             Vec.sub endpoint starts.((s + 1) mod segments))
       in
       residual :=
         Array.fold_left (fun acc d -> Float.max acc (Vec.norm_inf d)) 0.0 defects;
       history := !residual :: !history;
       Telemetry.observe "multiple-shooting.residual" !residual;
       if not (Float.is_finite !residual) then
         fail (Report.Failed "matching defects diverged (non-finite)");
       if !residual <= tol then converged := true
       else begin
         let big = segments * n in
         let coo = Sparse.Coo.create ~capacity:(segments * n * (n + 1)) big big in
         let rhs = Array.make big 0.0 in
         Array.iteri
           (fun s (_, monodromy) ->
             let next = (s + 1) mod segments in
             for i = 0 to n - 1 do
               rhs.((s * n) + i) <- -.defects.(s).(i);
               Sparse.Coo.add coo ((s * n) + i) ((next * n) + i) (-1.0);
               for j = 0 to n - 1 do
                 Sparse.Coo.add coo ((s * n) + i) ((s * n) + j) (Mat.get monodromy i j)
               done
             done)
           results;
         let delta =
           try Sparse.Splu.solve (Sparse.Splu.factor (Sparse.Csr.of_coo coo)) rhs
           with e ->
             fail (Report.Failed ("cyclic Jacobian solve failed: " ^ Printexc.to_string e))
         in
         if not (Resilience.Guard.finite delta) then
           fail (Report.Failed "non-finite multiple-shooting update");
         Array.iteri
           (fun s x ->
             for i = 0 to n - 1 do
               x.(i) <- x.(i) +. delta.((s * n) + i)
             done)
           starts;
         incr iterations
       end
     done;
     if not !converged then outcome := Report.Failed "max shooting iterations"
   with Exit -> ());
  (* Stitch the final windows into one period trace (recompute if the
     starts moved after the last integration; keep the previous traces
     when the recomputation itself fails or exhausts the budget). *)
  let results =
    if !converged then !last_traces
    else
      try integrate_all starts
      with Budget.Exhausted _ | Failure _ -> !last_traces
  in
  let trace =
    if Array.length results = 0 then
      { Numeric.Integrator.times = [| 0.0 |]; states = [| starts.(0) |] }
    else begin
      let total = (segments * steps_per_segment) + 1 in
      let times = Array.make total 0.0 and states = Array.make total starts.(0) in
      Array.iteri
        (fun s (trace, _) ->
          for k = 0 to steps_per_segment do
            let idx = (s * steps_per_segment) + k in
            if idx < total then begin
              times.(idx) <- trace.Numeric.Integrator.times.(k);
              states.(idx) <- trace.Numeric.Integrator.states.(k)
            end
          done)
        results;
      { Numeric.Integrator.times; states }
    end
  in
  {
    segment_starts = starts;
    trace;
    newton_iterations = !iterations;
    converged = !converged;
    residual_norm = !residual;
    outcome = !outcome;
    residual_history = Array.of_list (List.rev !history);
  }

let to_report ?(wall_seconds = 0.0) r =
  let status =
    match r.outcome with
    | Report.Converged -> `Success
    | Report.Failed m -> `Failed m
    | Report.Exhausted e -> `Failed (Budget.exhaustion_to_string e)
  in
  {
    Report.outcome = r.outcome;
    strategy = Some "newton";
    stages =
      [
        {
          Report.name = "multiple-shooting";
          status;
          iterations = r.newton_iterations;
          wall_seconds;
        };
      ];
    residual_trajectory = r.residual_history;
    residual_norm = r.residual_norm;
    newton_iterations = r.newton_iterations;
    linear_iterations = 0;
    wall_seconds;
    telemetry = None;
    sections = [];
  }
