module Vec = Linalg.Vec

type result = {
  times : float array;
  states : Vec.t array;
  newton_iterations : int;
  converged : bool;
  residual_norm : float;
  outcome : Resilience.Report.outcome;
  residual_history : float array;
}

let solve ?(max_newton = 60) ?(tol = 1e-8) ?budget ?x_init ~(dae : Numeric.Dae.t)
    ~period ~points () =
  if points < 2 then invalid_arg "Periodic_fd.solve: need at least 2 points";
  Telemetry.span "periodic-fd.solve" @@ fun () ->
  let n = dae.Numeric.Dae.size in
  let big = points * n in
  let h = period /. float_of_int points in
  let times = Array.init points (fun k -> float_of_int k *. h) in
  let sources = Array.map dae.Numeric.Dae.source times in
  let state_of big_x k = Array.sub big_x (k * n) n in
  let residual big_x =
    let r = Array.make big 0.0 in
    let qs = Array.init points (fun k -> dae.Numeric.Dae.eval_q (state_of big_x k)) in
    for k = 0 to points - 1 do
      let xk = state_of big_x k in
      let f = dae.Numeric.Dae.eval_f xk in
      let q_prev = qs.((k + points - 1) mod points) in
      let b = sources.(k) in
      for i = 0 to n - 1 do
        r.((k * n) + i) <- ((qs.(k).(i) -. q_prev.(i)) /. h) +. f.(i) -. b.(i)
      done
    done;
    r
  in
  let solve_linearized big_x r =
    let coo = Sparse.Coo.create ~capacity:(8 * big) big big in
    let jacs = Array.init points (fun k -> dae.Numeric.Dae.jacobians (state_of big_x k)) in
    for k = 0 to points - 1 do
      let g, c = jacs.(k) in
      let km1 = (k + points - 1) mod points in
      let _, c_prev = jacs.(km1) in
      for i = 0 to n - 1 do
        Sparse.Csr.iter_row c i (fun j v -> Sparse.Coo.add coo ((k * n) + i) ((k * n) + j) (v /. h));
        Sparse.Csr.iter_row g i (fun j v -> Sparse.Coo.add coo ((k * n) + i) ((k * n) + j) v);
        Sparse.Csr.iter_row c_prev i (fun j v ->
            Sparse.Coo.add coo ((k * n) + i) ((km1 * n) + j) (-.v /. h))
      done
    done;
    Sparse.Splu.solve (Sparse.Splu.factor (Sparse.Csr.of_coo coo)) r
  in
  let x0 =
    let seed = match x_init with Some x -> x | None -> Array.make n 0.0 in
    let big_x = Array.make big 0.0 in
    for k = 0 to points - 1 do
      Array.blit seed 0 big_x (k * n) n
    done;
    big_x
  in
  let options =
    { Numeric.Newton.default_options with max_iterations = max_newton; abs_tol = tol; budget }
  in
  let big_x, stats =
    Numeric.Newton.solve ~options { Numeric.Newton.residual; solve_linearized } x0
  in
  {
    times;
    states = Array.init points (state_of big_x);
    newton_iterations = stats.Numeric.Newton.iterations;
    converged = Numeric.Newton.converged stats;
    residual_norm = stats.Numeric.Newton.residual_norm;
    outcome = Numeric.Newton.report_outcome stats;
    residual_history = stats.Numeric.Newton.residual_history;
  }

let to_report ?(wall_seconds = 0.0) r =
  let status =
    match r.outcome with
    | Resilience.Report.Converged -> `Success
    | Resilience.Report.Failed m -> `Failed m
    | Resilience.Report.Exhausted e ->
        `Failed (Resilience.Budget.exhaustion_to_string e)
  in
  {
    Resilience.Report.outcome = r.outcome;
    strategy = Some "newton";
    stages =
      [
        {
          Resilience.Report.name = "periodic-fd";
          status;
          iterations = r.newton_iterations;
          wall_seconds;
        };
      ];
    residual_trajectory = r.residual_history;
    residual_norm = r.residual_norm;
    newton_iterations = r.newton_iterations;
    linear_iterations = 0;
    wall_seconds;
    telemetry = None;
    sections = [];
  }
