(** Multiple shooting for periodic steady state (paper ref. [6],
    Parkhurst & Ogborn): the period is split into [segments] windows
    whose initial states are solved simultaneously, with matching
    conditions chaining each window's endpoint to the next window's
    start and a periodic wrap at the end.

    Compared to single shooting this shortens each integration window,
    which tames the monodromy's conditioning on stiff or rapidly
    contracting circuits; it is also the natural stepping stone between
    shooting and the full collocation of {!Periodic_fd}.

    Resilience: an optional {!Resilience.Budget.t} bounds outer
    iterations and inner time-step Newton solves; non-finite defects or
    updates abort cleanly and are classified in [outcome]. *)

type result = {
  segment_starts : Linalg.Vec.t array;  (** [segments] solved window-start states *)
  trace : Numeric.Integrator.trace;  (** the stitched steady-state period *)
  newton_iterations : int;
  converged : bool;
  residual_norm : float;  (** infinity norm of all matching defects *)
  outcome : Resilience.Report.outcome;  (** structured exit classification *)
  residual_history : float array;
      (** residual norms per Newton iteration, chronological *)
}

val solve :
  ?max_newton:int ->
  ?tol:float ->
  ?steps_per_segment:int ->
  ?budget:Resilience.Budget.t ->
  ?x0:Linalg.Vec.t ->
  dae:Numeric.Dae.t ->
  period:float ->
  segments:int ->
  unit ->
  result
(** Defaults: [max_newton = 25], [tol = 1e-8],
    [steps_per_segment = 50]. [x0] seeds every window start.
    Budget exhaustion returns the best iterate with
    [outcome = Exhausted _].
    @raise Invalid_argument when [segments < 1]. *)

val to_report : ?wall_seconds:float -> result -> Resilience.Report.t
(** Adapter to the unified engine API: lift this engine's result into
    the structured report every {!Engine.Result.t} carries. *)
