(** Single-tone harmonic balance in pseudo-spectral (time-collocation)
    form: states at [N = 2K+1] uniform points over one period are the
    unknowns and the charge derivative is applied through the exact
    trigonometric spectral differentiation matrix, which is
    algebraically equivalent to classical frequency-domain HB with [K]
    harmonics (paper refs. [3, 4]).

    HB is the method the paper argues is ill-suited to sharp switching
    waveforms — the [abl_hb_vs_sharpness] bench quantifies that: the
    harmonic count needed for a given accuracy grows steeply as edges
    sharpen, while the time-domain methods are insensitive. *)

type result = {
  times : float array;
  states : Linalg.Vec.t array;
  harmonics : int;
  newton_iterations : int;
  converged : bool;
  residual_norm : float;
  outcome : Resilience.Report.outcome;  (** structured exit classification *)
  residual_history : float array;
      (** residual norms per Newton iteration, chronological *)
}

val solve :
  ?max_newton:int ->
  ?tol:float ->
  ?budget:Resilience.Budget.t ->
  ?x_init:Linalg.Vec.t ->
  dae:Numeric.Dae.t ->
  period:float ->
  harmonics:int ->
  unit ->
  result
(** [budget] is ticked once per collocation Newton iteration; on
    exhaustion the best iterate is returned with
    [outcome = Exhausted _]. *)

val spectral_diff_matrix : int -> float -> Linalg.Mat.t
(** [spectral_diff_matrix n period] is the [n] x [n] differentiation
    matrix for trigonometric interpolants on [n] (odd) uniform points;
    exposed for tests. @raise Invalid_argument if [n] is even. *)

val harmonic_amplitude : result -> unknown:int -> harmonic:int -> float
(** Amplitude of harmonic [k] of the given unknown's steady-state
    waveform. *)

val to_report : ?wall_seconds:float -> result -> Resilience.Report.t
(** Adapter to the unified engine API: lift this engine's result into
    the structured report every {!Engine.Result.t} carries. *)
