(** Periodic steady state by finite-difference collocation over one
    period (“time-discretization across one period”, paper §3): the
    states at [N] uniform time points are solved simultaneously with
    backward-difference coupling and a periodic wrap. This is exactly
    the one-dimensional specialization of the MPDE grid solver and
    serves both as a baseline and as a cross-check for it. *)

type result = {
  times : float array;  (** [N] collocation times over one period *)
  states : Linalg.Vec.t array;
  newton_iterations : int;
  converged : bool;
  residual_norm : float;
  outcome : Resilience.Report.outcome;  (** structured exit classification *)
  residual_history : float array;
      (** residual norms per Newton iteration, chronological *)
}

val solve :
  ?max_newton:int ->
  ?tol:float ->
  ?budget:Resilience.Budget.t ->
  ?x_init:Linalg.Vec.t ->
  dae:Numeric.Dae.t ->
  period:float ->
  points:int ->
  unit ->
  result
(** [x_init] seeds every collocation point (e.g. the DC operating
    point). System size is [points * dae.size]; the Jacobian is solved
    with the general sparse LU. *)

val to_report : ?wall_seconds:float -> result -> Resilience.Report.t
(** Adapter to the unified engine API: lift this engine's result into
    the structured report every {!Engine.Result.t} carries. *)
