(** Single-time Newton shooting for periodic steady state (paper
    refs. [1, 6, 10]): find [x0] with [Φ_T(x0) = x0] where [Φ_T]
    integrates the circuit over one period.

    The monodromy matrix [∂Φ_T/∂x0] is propagated step-by-step through
    the backward-Euler sensitivity recursion; the Newton update solves
    the dense [(M − I)] system. This is the baseline whose cost grows
    linearly with the number of time steps per period — i.e. linearly
    with the fast/slow frequency disparity when the period is the
    difference period (paper §3, “Computational speedup”).

    Resilience: an optional {!Resilience.Budget.t} is ticked per outer
    shooting iteration and threaded into every inner time-step Newton
    solve; non-finite periodicity residuals or shooting updates abort
    the outer loop instead of propagating NaN. Every exit path is
    classified in the [outcome] field. *)

type result = {
  x0 : Linalg.Vec.t;  (** periodic initial state *)
  trace : Numeric.Integrator.trace;  (** one steady-state period *)
  newton_iterations : int;
  total_time_steps : int;  (** integration steps summed over all Newton iterations *)
  converged : bool;
  residual_norm : float;  (** ‖Φ(x0) − x0‖∞ at exit *)
  outcome : Resilience.Report.outcome;  (** structured exit classification *)
  residual_history : float array;
      (** periodicity residual per outer Newton iteration, chronological *)
}

val solve :
  ?max_newton:int ->
  ?tol:float ->
  ?steps_per_period:int ->
  ?budget:Resilience.Budget.t ->
  ?x0:Linalg.Vec.t ->
  dae:Numeric.Dae.t ->
  period:float ->
  unit ->
  result
(** Defaults: [max_newton = 25], [tol = 1e-8] (infinity norm on the
    periodicity residual), [steps_per_period = 200]. When [x0] is
    absent the zero state is used; pass a DC operating point for
    faster convergence. [budget] bounds the combined work of outer
    shooting iterations and inner time-step Newton solves; exhaustion
    yields [outcome = Exhausted _] with the best iterate so far. *)

val integrate_with_sensitivity :
  ?newton_options:Numeric.Newton.options ->
  dae:Numeric.Dae.t ->
  x0:Linalg.Vec.t ->
  t0:float ->
  duration:float ->
  steps:int ->
  unit ->
  Numeric.Integrator.trace * Linalg.Mat.t
(** Backward-Euler integration over [[t0, t0 + duration]] that also
    propagates the sensitivity [∂x(t0+duration)/∂x(t0)] (the window
    monodromy). Building block shared with {!Multiple_shooting}.
    @raise Failure if an inner Newton solve fails.
    @raise Resilience.Budget.Exhausted when the inner Newton budget
    runs out mid-window. *)

val to_report : ?wall_seconds:float -> result -> Resilience.Report.t
(** Adapter to the unified engine API: lift this engine's bespoke
    result into the structured report every {!Engine.Result.t}
    carries. [wall_seconds] (default 0) stamps the single
    ["shooting"] stage and the report total. *)
