module Vec = Linalg.Vec
module Mat = Linalg.Mat

type result = {
  times : float array;
  states : Vec.t array;
  harmonics : int;
  newton_iterations : int;
  converged : bool;
  residual_norm : float;
  outcome : Resilience.Report.outcome;
  residual_history : float array;
}

let spectral_diff_matrix n period =
  if n mod 2 = 0 then invalid_arg "Hb.spectral_diff_matrix: n must be odd";
  Numeric.Spectral.diff_matrix n period

let solve ?(max_newton = 60) ?(tol = 1e-8) ?budget ?x_init ~(dae : Numeric.Dae.t)
    ~period ~harmonics () =
  if harmonics < 1 then invalid_arg "Hb.solve: need at least 1 harmonic";
  Telemetry.span "hb.solve" @@ fun () ->
  let points = (2 * harmonics) + 1 in
  let n = dae.Numeric.Dae.size in
  let big = points * n in
  let d = spectral_diff_matrix points period in
  let times = Array.init points (fun k -> float_of_int k *. period /. float_of_int points) in
  let sources = Array.map dae.Numeric.Dae.source times in
  let state_of big_x k = Array.sub big_x (k * n) n in
  let residual big_x =
    let qs = Array.init points (fun k -> dae.Numeric.Dae.eval_q (state_of big_x k)) in
    let r = Array.make big 0.0 in
    for k = 0 to points - 1 do
      let f = dae.Numeric.Dae.eval_f (state_of big_x k) in
      for i = 0 to n - 1 do
        let dq = ref 0.0 in
        for l = 0 to points - 1 do
          dq := !dq +. (Mat.get d k l *. qs.(l).(i))
        done;
        r.((k * n) + i) <- !dq +. f.(i) -. sources.(k).(i)
      done
    done;
    r
  in
  let solve_linearized big_x r =
    let coo = Sparse.Coo.create ~capacity:(points * points * n) big big in
    let jacs = Array.init points (fun k -> dae.Numeric.Dae.jacobians (state_of big_x k)) in
    for k = 0 to points - 1 do
      let g, _ = jacs.(k) in
      for i = 0 to n - 1 do
        Sparse.Csr.iter_row g i (fun j v -> Sparse.Coo.add coo ((k * n) + i) ((k * n) + j) v)
      done;
      for l = 0 to points - 1 do
        let dkl = Mat.get d k l in
        if dkl <> 0.0 then begin
          let _, c = jacs.(l) in
          for i = 0 to n - 1 do
            Sparse.Csr.iter_row c i (fun j v ->
                Sparse.Coo.add coo ((k * n) + i) ((l * n) + j) (dkl *. v))
          done
        end
      done
    done;
    Sparse.Splu.solve (Sparse.Splu.factor (Sparse.Csr.of_coo coo)) r
  in
  let x0 =
    let seed = match x_init with Some x -> x | None -> Array.make n 0.0 in
    let big_x = Array.make big 0.0 in
    for k = 0 to points - 1 do
      Array.blit seed 0 big_x (k * n) n
    done;
    big_x
  in
  let options =
    { Numeric.Newton.default_options with max_iterations = max_newton; abs_tol = tol; budget }
  in
  let big_x, stats =
    Numeric.Newton.solve ~options { Numeric.Newton.residual; solve_linearized } x0
  in
  {
    times;
    states = Array.init points (state_of big_x);
    harmonics;
    newton_iterations = stats.Numeric.Newton.iterations;
    converged = Numeric.Newton.converged stats;
    residual_norm = stats.Numeric.Newton.residual_norm;
    outcome = Numeric.Newton.report_outcome stats;
    residual_history = stats.Numeric.Newton.residual_history;
  }

let harmonic_amplitude result ~unknown ~harmonic =
  let samples = Array.map (fun x -> x.(unknown)) result.states in
  Numeric.Fft.amplitude_at samples harmonic

let to_report ?(wall_seconds = 0.0) r =
  let status =
    match r.outcome with
    | Resilience.Report.Converged -> `Success
    | Resilience.Report.Failed m -> `Failed m
    | Resilience.Report.Exhausted e ->
        `Failed (Resilience.Budget.exhaustion_to_string e)
  in
  {
    Resilience.Report.outcome = r.outcome;
    strategy = Some "newton";
    stages =
      [
        {
          Resilience.Report.name = "hb";
          status;
          iterations = r.newton_iterations;
          wall_seconds;
        };
      ];
    residual_trajectory = r.residual_history;
    residual_norm = r.residual_norm;
    newton_iterations = r.newton_iterations;
    linear_iterations = 0;
    wall_seconds;
    telemetry = None;
    sections = [];
  }
