module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Budget = Resilience.Budget
module Report = Resilience.Report

type result = {
  x0 : Vec.t;
  trace : Numeric.Integrator.trace;
  newton_iterations : int;
  total_time_steps : int;
  converged : bool;
  residual_norm : float;
  outcome : Report.outcome;
  residual_history : float array;
}

(* Integrate one period with backward Euler while propagating the
   sensitivity S = ∂x(t)/∂x(0). The BE step residual
   [q(x⁺) − q(x)]/h + f(x⁺) − b = 0 gives S⁺ = J⁻¹ (C/h) S with
   J = C⁺/h + G⁺ evaluated at the accepted state. *)
let integrate_with_sensitivity ?newton_options ~(dae : Numeric.Dae.t) ~x0 ~t0 ~duration
    ~steps () =
  Telemetry.span "shooting.integrate" @@ fun () ->
  let n = dae.Numeric.Dae.size in
  let h = duration /. float_of_int steps in
  let sensitivity = ref (Mat.identity n) in
  let times = Array.make (steps + 1) t0 in
  let states = Array.make (steps + 1) x0 in
  for k = 1 to steps do
    let x_prev = states.(k - 1) in
    let t_next = t0 +. (float_of_int k *. h) in
    let step =
      Numeric.Integrator.implicit_step ?newton_options
        ~method_:Numeric.Integrator.Backward_euler ~dae ~t_next ~h ~x_prev ()
    in
    if not step.Numeric.Integrator.converged then begin
      match step.Numeric.Integrator.outcome with
      | Numeric.Newton.Exhausted e -> raise (Budget.Exhausted e)
      | _ -> failwith "Shooting: Newton failed inside period integration"
    end;
    let x_next = step.Numeric.Integrator.x in
    (* Sensitivity propagation. *)
    let _, c_prev = dae.Numeric.Dae.jacobians x_prev in
    let g_next, c_next = dae.Numeric.Dae.jacobians x_next in
    let jac =
      let coo = Sparse.Coo.create ~capacity:(Sparse.Csr.nnz g_next + Sparse.Csr.nnz c_next) n n in
      for i = 0 to n - 1 do
        Sparse.Csr.iter_row c_next i (fun j v -> Sparse.Coo.add coo i j (v /. h));
        Sparse.Csr.iter_row g_next i (fun j v -> Sparse.Coo.add coo i j v)
      done;
      Sparse.Splu.factor (Sparse.Csr.of_coo coo)
    in
    let s = !sensitivity in
    let s_next = Mat.create n n in
    let column = Array.make n 0.0 in
    for j = 0 to n - 1 do
      (* rhs = (C_prev/h) · S(:,j) *)
      let sj = Mat.col s j in
      let rhs = Sparse.Csr.mul_vec c_prev sj in
      Vec.scale_ip (1.0 /. h) rhs;
      Sparse.Splu.solve_into jac rhs column;
      for i = 0 to n - 1 do
        Mat.set s_next i j column.(i)
      done
    done;
    sensitivity := s_next;
    times.(k) <- t_next;
    states.(k) <- x_next
  done;
  ({ Numeric.Integrator.times; states }, !sensitivity)

let integrate_period ?newton_options ~dae ~x0 ~period ~steps () =
  integrate_with_sensitivity ?newton_options ~dae ~x0 ~t0:0.0 ~duration:period ~steps ()

let degenerate_trace x0 = { Numeric.Integrator.times = [| 0.0 |]; states = [| x0 |] }

let solve ?(max_newton = 25) ?(tol = 1e-8) ?(steps_per_period = 200) ?budget ?x0 ~dae
    ~period () =
  Telemetry.span "shooting.solve" @@ fun () ->
  let n = dae.Numeric.Dae.size in
  let x0 = ref (match x0 with Some x -> Array.copy x | None -> Array.make n 0.0) in
  let newton_options =
    match budget with
    | None -> None
    | Some b -> Some { Numeric.Newton.default_options with budget = Some b }
  in
  let iterations = ref 0 in
  let total_steps = ref 0 in
  let converged = ref false in
  let residual = ref infinity in
  let history = ref [] in
  let last_trace = ref None in
  let outcome = ref Report.Converged in
  let fail o =
    outcome := o;
    raise Exit
  in
  (try
     while (not !converged) && !iterations < max_newton do
       (match budget with
       | Some b -> (
           try Budget.tick_newton b with Budget.Exhausted e -> fail (Report.Exhausted e))
       | None -> ());
       let trace, monodromy =
         try integrate_period ?newton_options ~dae ~x0:!x0 ~period ~steps:steps_per_period ()
         with
         | Budget.Exhausted e -> fail (Report.Exhausted e)
         | Failure msg -> fail (Report.Failed msg)
       in
       total_steps := !total_steps + steps_per_period;
       last_trace := Some trace;
       let x_end = trace.Numeric.Integrator.states.(steps_per_period) in
       let r = Vec.sub x_end !x0 in
       residual := Vec.norm_inf r;
       history := !residual :: !history;
       Telemetry.observe "shooting.residual" !residual;
       if not (Float.is_finite !residual) then
         fail (Report.Failed "periodicity residual diverged (non-finite)");
       if !residual <= tol then converged := true
       else begin
         (* Solve (M − I) δ = −r, update x0 ← x0 + δ. *)
         let m_minus_i = Mat.sub monodromy (Mat.identity n) in
         let delta =
           try Linalg.Lu.solve_dense m_minus_i (Vec.neg r)
           with e ->
             fail (Report.Failed ("monodromy solve failed: " ^ Printexc.to_string e))
         in
         if not (Resilience.Guard.finite delta) then
           fail (Report.Failed "non-finite shooting update");
         Vec.add_ip !x0 delta;
         incr iterations
       end
     done;
     if not !converged then outcome := Report.Failed "max shooting iterations"
   with Exit -> ());
  (* Final trace consistent with the solution (best effort when the
     solve ended on a failure or budget exhaustion). *)
  let trace =
    if !converged then
      match !last_trace with Some t -> t | None -> assert false
    else begin
      try
        let t, _ =
          integrate_period ?newton_options ~dae ~x0:!x0 ~period ~steps:steps_per_period ()
        in
        total_steps := !total_steps + steps_per_period;
        t
      with Budget.Exhausted _ | Failure _ -> (
        match !last_trace with Some t -> t | None -> degenerate_trace !x0)
    end
  in
  {
    x0 = !x0;
    trace;
    newton_iterations = !iterations;
    total_time_steps = !total_steps;
    converged = !converged;
    residual_norm = !residual;
    outcome = !outcome;
    residual_history = Array.of_list (List.rev !history);
  }

let to_report ?(wall_seconds = 0.0) r =
  let status =
    match r.outcome with
    | Report.Converged -> `Success
    | Report.Failed m -> `Failed m
    | Report.Exhausted e -> `Failed (Budget.exhaustion_to_string e)
  in
  {
    Report.outcome = r.outcome;
    strategy = Some "newton";
    stages =
      [
        {
          Report.name = "shooting";
          status;
          iterations = r.newton_iterations;
          wall_seconds;
        };
      ];
    residual_trajectory = r.residual_history;
    residual_norm = r.residual_norm;
    newton_iterations = r.newton_iterations;
    linear_iterations = 0;
    wall_seconds;
    telemetry = None;
    sections = [];
  }
