type exhaustion =
  | Wall_clock of { limit : float; elapsed : float }
  | Newton_iterations of { limit : int; used : int }
  | Linear_iterations of { limit : int; used : int }
  | Continuation_steps of { limit : int; used : int }

exception Exhausted of exhaustion

type t = {
  started : float;
  wall_seconds : float option;
  max_newton : int option;
  max_linear : int option;
  max_continuation : int option;
  mutable newton : int;
  mutable linear : int;
  mutable continuation : int;
  parent : t option;
}

let make ?wall_seconds ?max_newton ?max_linear ?max_continuation ?parent () =
  {
    started = Telemetry.Clock.wall ();
    wall_seconds;
    max_newton;
    max_linear;
    max_continuation;
    newton = 0;
    linear = 0;
    continuation = 0;
    parent;
  }

let elapsed b = Telemetry.Clock.wall () -. b.started

let over_cap used = function Some limit when used > limit -> Some limit | _ -> None

let rec exhausted b =
  let local =
    match b.wall_seconds with
    | Some limit when elapsed b > limit -> Some (Wall_clock { limit; elapsed = elapsed b })
    | _ -> (
        match over_cap b.newton b.max_newton with
        | Some limit -> Some (Newton_iterations { limit; used = b.newton })
        | None -> (
            match over_cap b.linear b.max_linear with
            | Some limit -> Some (Linear_iterations { limit; used = b.linear })
            | None -> (
                match over_cap b.continuation b.max_continuation with
                | Some limit -> Some (Continuation_steps { limit; used = b.continuation })
                | None -> None)))
  in
  match local with
  | Some _ -> local
  | None -> ( match b.parent with Some p -> exhausted p | None -> None)

let check b = match exhausted b with Some e -> raise (Exhausted e) | None -> ()

let rec bump f b =
  f b;
  match b.parent with Some p -> bump f p | None -> ()

let tick_newton ?(count = 1) b =
  bump (fun b -> b.newton <- b.newton + count) b;
  check b

let tick_linear ?(count = 1) b =
  bump (fun b -> b.linear <- b.linear + count) b;
  check b

let tick_continuation ?(count = 1) b =
  bump (fun b -> b.continuation <- b.continuation + count) b;
  check b

let newton_used b = b.newton

let linear_used b = b.linear

let continuation_used b = b.continuation

let rec remaining_seconds b =
  let local = Option.map (fun limit -> limit -. elapsed b) b.wall_seconds in
  let up = match b.parent with Some p -> remaining_seconds p | None -> None in
  match (local, up) with
  | Some a, Some b -> Some (Float.min a b)
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None

let pp_exhaustion ppf = function
  | Wall_clock { limit; elapsed } ->
      Format.fprintf ppf "wall-clock(limit=%.3fs elapsed=%.3fs)" limit elapsed
  | Newton_iterations { limit; used } ->
      Format.fprintf ppf "newton-iterations(limit=%d used=%d)" limit used
  | Linear_iterations { limit; used } ->
      Format.fprintf ppf "linear-iterations(limit=%d used=%d)" limit used
  | Continuation_steps { limit; used } ->
      Format.fprintf ppf "continuation-steps(limit=%d used=%d)" limit used

let exhaustion_to_string e = Format.asprintf "%a" pp_exhaustion e
