(** Structured, machine-readable solve reports.

    Every resilient engine produces one of these instead of (or in
    addition to) a bare converged flag: what the outcome was, which
    ladder strategy won, what each stage did, how the residual evolved,
    and how much wall time was spent. [to_json_string] emits a
    single-line JSON object (hand-rolled; no external dependency) so
    reports can be scraped from CLI output or shipped to a service
    log pipeline. *)

type outcome =
  | Converged
  | Failed of string
  | Exhausted of Budget.exhaustion

type stage = {
  name : string;
  status : [ `Success | `Failed of string | `Skipped ];
  iterations : int;  (** Newton iterations spent in this stage *)
  wall_seconds : float;
}

type t = {
  outcome : outcome;
  strategy : string option;  (** winning ladder stage, when any *)
  stages : stage list;
  residual_trajectory : float array;
      (** residual infinity norms per Newton iteration, across stages *)
  residual_norm : float;  (** final residual norm *)
  newton_iterations : int;
  linear_iterations : int;
  wall_seconds : float;
  telemetry : Telemetry.Summary.t option;
      (** per-solve span summary, when telemetry was enabled; rendered
          as the ["telemetry"] section of the JSON report *)
  sections : (string * string) list;
      (** extra top-level JSON sections [(key, pre-rendered JSON value)]
          appended verbatim by higher layers (e.g. the diagnostics
          library embeds a ["diagnostics"] section); the report module
          itself never interprets them *)
}

val success : t -> bool

val add_section : t -> string -> string -> t
(** [add_section r name json] appends a top-level JSON section; [json]
    must already be valid JSON text. *)

val of_ladder :
  ?iterations_of:(string -> int) ->
  ?telemetry:Telemetry.Summary.t ->
  residual_trajectory:float array ->
  residual_norm:float ->
  newton_iterations:int ->
  linear_iterations:int ->
  wall_seconds:float ->
  'a Ladder.run ->
  t
(** Build a report from a ladder run. [iterations_of] maps a stage name
    to the Newton iterations it consumed (default 0). The outcome is
    [Converged] when the ladder produced a value, [Exhausted] when it
    stopped on a budget, [Failed] otherwise. *)

val outcome_to_string : outcome -> string

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)

val to_json_string : t -> string
(** Single-line JSON. *)
