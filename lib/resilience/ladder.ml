type failure =
  | Linear_stall
  | Nonlinear
  | Non_finite of Guard.violation
  | Exhausted of Budget.exhaustion

type 'a stage = {
  name : string;
  applies : failure option -> bool;
  attempt : unit -> ('a, failure * string) result;
}

type record = {
  stage : string;
  status : [ `Success | `Failed of string | `Skipped ];
  wall_seconds : float;
}

type 'a run = {
  value : 'a option;
  strategy : string option;
  records : record list;
  last_failure : failure option;
}

let always _ = true

let on_linear_stall = function Some Linear_stall -> true | _ -> false

let on_nonlinear = function
  | Some Nonlinear | Some (Non_finite _) -> true
  | _ -> false

let pp_failure ppf = function
  | Linear_stall -> Format.pp_print_string ppf "linear-stall"
  | Nonlinear -> Format.pp_print_string ppf "nonlinear"
  | Non_finite v -> Format.fprintf ppf "non-finite(%a)" Guard.pp_violation v
  | Exhausted e -> Format.fprintf ppf "exhausted(%a)" Budget.pp_exhaustion e

let run ?budget stages =
  let records = ref [] in
  let push r = records := r :: !records in
  let skip stage = push { stage = stage.name; status = `Skipped; wall_seconds = 0.0 } in
  let rec climb last_failure = function
    | [] -> (None, None, last_failure)
    | stage :: rest -> (
        let budget_gone =
          match Option.map Budget.exhausted budget with
          | Some (Some e) -> Some e
          | _ -> None
        in
        match budget_gone with
        | Some e ->
            skip stage;
            List.iter skip rest;
            (None, None, Some (Exhausted e))
        | None ->
            if not (stage.applies last_failure) then begin
              skip stage;
              climb last_failure rest
            end
            else begin
              let t0 = Telemetry.Clock.wall () in
              let outcome =
                (* Each escalation stage is a telemetry span, so the cost
                   of recovery strategies shows up in trace timelines.
                   The stage tracker makes the active rung visible to
                   fault filters and to failure reports assembled from
                   an exception handler above the ladder. *)
                Faultinject.set_stage (Some stage.name);
                Fun.protect
                  ~finally:(fun () -> Faultinject.set_stage None)
                  (fun () ->
                    try Telemetry.span ("stage." ^ stage.name) stage.attempt with
                    | Guard.Non_finite v ->
                        Error (Non_finite v, Guard.violation_to_string v)
                    | Budget.Exhausted e ->
                        Error (Exhausted e, Budget.exhaustion_to_string e))
              in
              let wall_seconds = Telemetry.Clock.wall () -. t0 in
              match outcome with
              | Ok value ->
                  push { stage = stage.name; status = `Success; wall_seconds };
                  List.iter skip rest;
                  (Some value, Some stage.name, last_failure)
              | Error ((Exhausted _ as f), msg) ->
                  (* A deadline applies to the whole ladder: stop climbing. *)
                  push { stage = stage.name; status = `Failed msg; wall_seconds };
                  List.iter skip rest;
                  (None, None, Some f)
              | Error (f, msg) ->
                  push { stage = stage.name; status = `Failed msg; wall_seconds };
                  climb (Some f) rest
            end)
  in
  let value, strategy, last_failure = climb None stages in
  { value; strategy; records = List.rev !records; last_failure }
