type outcome =
  | Converged
  | Failed of string
  | Exhausted of Budget.exhaustion

type stage = {
  name : string;
  status : [ `Success | `Failed of string | `Skipped ];
  iterations : int;
  wall_seconds : float;
}

type t = {
  outcome : outcome;
  strategy : string option;
  stages : stage list;
  residual_trajectory : float array;
  residual_norm : float;
  newton_iterations : int;
  linear_iterations : int;
  wall_seconds : float;
  telemetry : Telemetry.Summary.t option;
  sections : (string * string) list;
}

let success r = r.outcome = Converged

let add_section r name json = { r with sections = r.sections @ [ (name, json) ] }

let outcome_to_string = function
  | Converged -> "converged"
  | Failed msg -> "failed: " ^ msg
  | Exhausted e -> "exhausted: " ^ Budget.exhaustion_to_string e

let of_ladder ?(iterations_of = fun _ -> 0) ?telemetry ~residual_trajectory
    ~residual_norm ~newton_iterations ~linear_iterations ~wall_seconds
    (run : _ Ladder.run) =
  let outcome =
    match (run.Ladder.value, run.Ladder.last_failure) with
    | Some _, _ -> Converged
    | None, Some (Ladder.Exhausted e) -> Exhausted e
    | None, Some f -> Failed (Format.asprintf "%a" Ladder.pp_failure f)
    | None, None -> Failed "no applicable strategy"
  in
  let stages =
    List.map
      (fun { Ladder.stage; status; wall_seconds } ->
        { name = stage; status; iterations = iterations_of stage; wall_seconds })
      run.Ladder.records
  in
  {
    outcome;
    strategy = run.Ladder.strategy;
    stages;
    residual_trajectory;
    residual_norm;
    newton_iterations;
    linear_iterations;
    wall_seconds;
    telemetry;
    sections = [];
  }

let status_to_string = function
  | `Success -> "success"
  | `Failed _ -> "failed"
  | `Skipped -> "skipped"

let pp ppf r =
  Format.fprintf ppf "@[<v>outcome: %s@," (outcome_to_string r.outcome);
  (match r.strategy with
  | Some s -> Format.fprintf ppf "strategy: %s@," s
  | None -> ());
  Format.fprintf ppf "newton: %d  linear: %d  residual: %.3e  wall: %.3fs@,"
    r.newton_iterations r.linear_iterations r.residual_norm r.wall_seconds;
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-16s %-8s iters=%-5d wall=%.3fs" s.name
        (status_to_string s.status) s.iterations s.wall_seconds;
      (match s.status with
      | `Failed msg -> Format.fprintf ppf "  (%s)" msg
      | _ -> ());
      Format.pp_print_cut ppf ())
    r.stages;
  (match r.telemetry with
  | Some t -> Format.fprintf ppf "%a@," Telemetry.Summary.pp t
  | None -> ());
  Format.fprintf ppf "@]"

(* Minimal JSON emission: only strings need escaping, and only the
   characters our own messages can contain. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_finite f then Printf.sprintf "%.6e" f
  else Printf.sprintf "\"%s\"" (if Float.is_nan f then "nan" else if f > 0.0 then "inf" else "-inf")

let to_json_string r =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\"outcome\":\"%s\"" (json_escape (outcome_to_string r.outcome));
  (match r.strategy with
  | Some s -> add ",\"strategy\":\"%s\"" (json_escape s)
  | None -> add ",\"strategy\":null");
  add ",\"newton_iterations\":%d,\"linear_iterations\":%d" r.newton_iterations
    r.linear_iterations;
  add ",\"residual_norm\":%s,\"wall_seconds\":%.3f" (json_float r.residual_norm)
    r.wall_seconds;
  add ",\"stages\":[";
  List.iteri
    (fun i s ->
      if i > 0 then add ",";
      add "{\"name\":\"%s\",\"status\":\"%s\"" (json_escape s.name)
        (status_to_string s.status);
      (match s.status with
      | `Failed msg -> add ",\"error\":\"%s\"" (json_escape msg)
      | _ -> ());
      add ",\"iterations\":%d,\"wall_seconds\":%.3f}" s.iterations s.wall_seconds)
    r.stages;
  add "],\"residual_trajectory\":[";
  Array.iteri
    (fun i f ->
      if i > 0 then add ",";
      add "%s" (json_float f))
    r.residual_trajectory;
  add "]";
  (match r.telemetry with
  | Some t ->
      add ",\"telemetry\":";
      Telemetry.Summary.add_json buf t
  | None -> ());
  List.iter
    (fun (name, json) ->
      add ",\"%s\":" (json_escape name);
      Buffer.add_string buf json)
    r.sections;
  add "}";
  Buffer.contents buf
