(** Retry policy for transient per-job failures, with
    decorrelated-jitter backoff.

    Backoff delays are deterministic — jitter comes from
    {!Faultinject.uniform} keyed on a seed and the job label, not a
    global RNG — and sleep through {!Telemetry.Clock.sleep}, so a test
    with a manual clock pays no real time. *)

type policy = {
  max_attempts : int;
      (** total tries including the first; [1] disables retry *)
  base_seconds : float;  (** first backoff, and the jitter floor *)
  cap_seconds : float;  (** backoff never exceeds this *)
  degrade : bool;
      (** after [max_attempts] failures, allow one extra attempt with
          degraded options (coarser grid, looser tolerance) *)
  seed : int;  (** jitter seed *)
}

val default : policy
(** 3 attempts, 20 ms base, 1 s cap, degradation on, seed 0. *)

val none : policy
(** Single attempt, no degradation: the pre-retry sweep behavior. *)

val backoff : policy -> salt:string -> attempt:int -> prev:float -> float
(** Decorrelated jitter (Brooker): [min cap (uniform base (3 * prev))]
    where [prev] is the previous delay (pass [0.0] before the first).
    [attempt] is the 1-based attempt that just failed; [salt]
    decorrelates concurrent jobs. *)

val sleep : float -> unit
(** {!Telemetry.Clock.sleep}. *)
