(** Composable computational budgets for the steady-state engines.

    A budget bounds a solve by wall-clock time and/or iteration counts.
    Solvers *tick* the budget as they burn iterations (Newton steps,
    Krylov inner iterations, continuation steps); a tick past any limit
    raises {!Exhausted}, which the solver catches and converts into a
    clean outcome instead of hanging or burning unbounded CPU.

    Budgets compose: a child created with [~parent] shares the parent's
    counters (ticks propagate up) and a check on the child also checks
    every ancestor, so a per-stage budget can never outlive the solve's
    overall deadline. *)

type exhaustion =
  | Wall_clock of { limit : float; elapsed : float }
  | Newton_iterations of { limit : int; used : int }
  | Linear_iterations of { limit : int; used : int }
  | Continuation_steps of { limit : int; used : int }

exception Exhausted of exhaustion

type t

val make :
  ?wall_seconds:float ->
  ?max_newton:int ->
  ?max_linear:int ->
  ?max_continuation:int ->
  ?parent:t ->
  unit ->
  t
(** Fresh budget; the wall clock starts now. Omitted limits are
    unbounded. *)

val elapsed : t -> float
(** Wall-clock seconds since creation. *)

val exhausted : t -> exhaustion option
(** Non-raising check of this budget and all ancestors. *)

val check : t -> unit
(** @raise Exhausted when any limit of this budget or an ancestor is
    exceeded. *)

val tick_newton : ?count:int -> t -> unit
(** Record [count] (default 1) Newton iterations, then {!check}.
    Counters propagate to ancestors. @raise Exhausted *)

val tick_linear : ?count:int -> t -> unit
(** Record linear-solver (Krylov) inner iterations, then {!check}.
    @raise Exhausted *)

val tick_continuation : ?count:int -> t -> unit
(** Record continuation steps, then {!check}. @raise Exhausted *)

val newton_used : t -> int

val linear_used : t -> int

val continuation_used : t -> int

val remaining_seconds : t -> float option
(** Tightest wall-clock headroom across the ancestor chain; [None]
    when no wall limit is set anywhere. *)

val pp_exhaustion : Format.formatter -> exhaustion -> unit

val exhaustion_to_string : exhaustion -> string
