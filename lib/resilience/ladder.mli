(** Declarative escalation ladder: a list of solve strategies tried in
    order until one succeeds.

    This generalizes the SPICE convergence ladder already used ad hoc by
    [Circuit.Dcop] (Newton → gmin stepping → source stepping) into one
    strategy interface shared by every engine. Each stage declares the
    failure classes it is worth trying after — e.g. an
    ILU0-strengthened Krylov solve only makes sense after a
    *linear-solver* stall, while source ramping addresses *nonlinear*
    divergence — so the ladder skips stages that cannot help.

    Stage bodies may raise {!Guard.Non_finite} (recorded as a
    [Non_finite] failure; escalation continues) and {!Budget.Exhausted}
    (recorded; the remaining rungs are skipped and the ladder stops —
    a deadline applies to the whole climb, not one rung). *)

type failure =
  | Linear_stall  (** the linear solver inside Newton stalled or broke *)
  | Nonlinear  (** Newton diverged, stalled, or ran out of iterations *)
  | Non_finite of Guard.violation  (** evaluation produced NaN/Inf *)
  | Exhausted of Budget.exhaustion  (** budget ran out mid-stage *)

type 'a stage = {
  name : string;
  applies : failure option -> bool;
      (** given the previous stage's failure ([None] for the first
          executed stage), should this stage run? *)
  attempt : unit -> ('a, failure * string) result;
}

type record = {
  stage : string;
  status : [ `Success | `Failed of string | `Skipped ];
  wall_seconds : float;
}

type 'a run = {
  value : 'a option;  (** the first successful stage's result *)
  strategy : string option;  (** name of the successful stage *)
  records : record list;  (** one per declared stage, in declaration order *)
  last_failure : failure option;  (** failure of the last executed stage *)
}

val always : failure option -> bool

val on_linear_stall : failure option -> bool
(** True when the previous failure was [Linear_stall]. *)

val on_nonlinear : failure option -> bool
(** True when the previous failure was [Nonlinear] or [Non_finite]. *)

val run : ?budget:Budget.t -> 'a stage list -> 'a run
(** Execute the ladder. [budget], when given, is checked before each
    stage; exhaustion (raised by a stage or detected between stages)
    marks the remaining stages [`Skipped] and stops the climb. *)

val pp_failure : Format.formatter -> failure -> unit
