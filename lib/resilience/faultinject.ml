type site = Residual | Jacobian | Gmres | Newton_iter | Job

type kind =
  | Nan
  | Inf
  | Singular
  | Ill_conditioned
  | Stall
  | Crash
  | Slow
  | Kill

type trigger = Nth of { first : int; count : int } | Prob of float

type fault = {
  kind : kind;
  site : site;
  filter : string option;
  trigger : trigger;
  magnitude : float option;
}

type plan = { seed : int; faults : fault array }

exception
  Injected_crash of { site : string; occurrence : int; context : string }

let () =
  Printexc.register_printer (function
    | Injected_crash { site; occurrence; context } ->
        Some
          (Printf.sprintf "Faultinject.Injected_crash(%s #%d at %s)" site
             occurrence context)
    | _ -> None)

let site_name = function
  | Residual -> "residual"
  | Jacobian -> "jacobian"
  | Gmres -> "gmres"
  | Newton_iter -> "newton"
  | Job -> "job"

let kind_name = function
  | Nan -> "nan"
  | Inf -> "inf"
  | Singular -> "singular"
  | Ill_conditioned -> "illcond"
  | Stall -> "stall"
  | Crash -> "crash"
  | Slow -> "slow"
  | Kill -> "kill"

(* ---------- deterministic PRNG ---------- *)

(* splitmix64 finalizer over an FNV-1a accumulated key. No global RNG
   state: the same (seed, salt, index) always yields the same draw, on
   any domain, in any interleaving. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let fnv_prime = 0x100000001b3L

let fnv_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let fnv_int h i =
  Int64.mul (Int64.logxor h (Int64.of_int i)) fnv_prime

let uniform ~seed ~salt index =
  let h = fnv_int (fnv_string (fnv_int 0xcbf29ce484222325L seed) salt) index in
  let bits = Int64.shift_right_logical (mix64 h) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(* ---------- parsing ---------- *)

let kind_of_name = function
  | "nan" -> Some Nan
  | "inf" -> Some Inf
  | "singular" -> Some Singular
  | "illcond" -> Some Ill_conditioned
  | "stall" -> Some Stall
  | "crash" -> Some Crash
  | "slow" -> Some Slow
  | "kill" -> Some Kill
  | _ -> None

let site_of_name = function
  | "residual" -> Some Residual
  | "jacobian" -> Some Jacobian
  | "gmres" -> Some Gmres
  | "newton" -> Some Newton_iter
  | "job" -> Some Job
  | _ -> None

let parse_trigger s =
  if String.length s > 0 && s.[0] = '~' then
    match float_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some p when p >= 0.0 && p <= 1.0 -> Some (Prob p)
    | _ -> None
  else
    match String.index_opt s 'x' with
    | None -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> Some (Nth { first = n; count = 1 })
        | _ -> None)
    | Some i -> (
        let first = int_of_string_opt (String.sub s 0 i) in
        let count =
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
        in
        match (first, count) with
        | Some f, Some c when f >= 1 && c >= 1 ->
            Some (Nth { first = f; count = c })
        | _ -> None)

let parse_item item =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.index_opt item '@' with
  | None -> fail "fault %S: missing '@SITE'" item
  | Some at -> (
      let kind_s = String.sub item 0 at in
      let rest = String.sub item (at + 1) (String.length item - at - 1) in
      match String.rindex_opt rest ':' with
      | None -> fail "fault %S: missing ':TRIGGER'" item
      | Some colon -> (
          let site_filter = String.sub rest 0 colon in
          let trig_mag =
            String.sub rest (colon + 1) (String.length rest - colon - 1)
          in
          let site_s, filter =
            match String.index_opt site_filter '/' with
            | None -> (site_filter, None)
            | Some sl ->
                ( String.sub site_filter 0 sl,
                  Some
                    (String.sub site_filter (sl + 1)
                       (String.length site_filter - sl - 1)) )
          in
          let trig_s, magnitude =
            match String.index_opt trig_mag '=' with
            | None -> (trig_mag, None)
            | Some eq -> (
                let m =
                  String.sub trig_mag (eq + 1) (String.length trig_mag - eq - 1)
                in
                match float_of_string_opt m with
                | Some f -> (String.sub trig_mag 0 eq, Some f)
                | None -> (trig_mag, None))
          in
          match (kind_of_name kind_s, site_of_name site_s) with
          | None, _ -> fail "fault %S: unknown kind %S" item kind_s
          | _, None -> fail "fault %S: unknown site %S" item site_s
          | Some kind, Some site -> (
              match parse_trigger trig_s with
              | None -> fail "fault %S: bad trigger %S" item trig_s
              | Some trigger -> Ok { kind; site; filter; trigger; magnitude })))

let parse spec =
  let items =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go seed faults = function
    | [] -> Ok { seed; faults = Array.of_list (List.rev faults) }
    | item :: rest -> (
        match String.index_opt item '=' with
        | Some eq
          when String.sub item 0 eq = "seed"
               && not (String.contains item '@') -> (
            match
              int_of_string_opt
                (String.sub item (eq + 1) (String.length item - eq - 1))
            with
            | Some s -> go s faults rest
            | None -> Error (Printf.sprintf "bad seed in %S" item))
        | _ -> (
            match parse_item item with
            | Ok f -> go seed (f :: faults) rest
            | Error _ as e -> e))
  in
  go 0 [] items

let parse_exn spec =
  match parse spec with Ok p -> p | Error m -> invalid_arg m

let trigger_to_string = function
  | Nth { first; count = 1 } -> string_of_int first
  | Nth { first; count } -> Printf.sprintf "%dx%d" first count
  | Prob p -> Printf.sprintf "~%g" p

let fault_to_string f =
  Printf.sprintf "%s@%s%s:%s%s" (kind_name f.kind) (site_name f.site)
    (match f.filter with None -> "" | Some s -> "/" ^ s)
    (trigger_to_string f.trigger)
    (match f.magnitude with None -> "" | Some m -> Printf.sprintf "=%g" m)

let to_string p =
  String.concat ","
    (Printf.sprintf "seed=%d" p.seed
    :: Array.to_list (Array.map fault_to_string p.faults))

(* ---------- process state ---------- *)

let plan_ref : plan option ref = ref None

(* Wall-clock skew accumulated by [slow] faults. Atomic because any
   worker domain may fire one while every domain reads the wrapped
   clock. Stored as an int64 bit pattern: Atomic over float boxes. *)
let skew_bits = Atomic.make 0L

let skew () = Int64.float_of_bits (Atomic.get skew_bits)

let add_skew dt =
  let rec go () =
    let old = Atomic.get skew_bits in
    let next = Int64.bits_of_float (Int64.float_of_bits old +. dt) in
    if not (Atomic.compare_and_set skew_bits old next) then go ()
  in
  go ()

let saved_clock : Telemetry.Clock.source option ref = ref None

(* Per-domain armed scope: occurrence counters for each fault in the
   installed plan. Counting per scope (= per sweep-job attempt) is what
   keeps Nth triggers deterministic under parallel sweeps — a global
   counter would fire on whichever domain got there first. *)
type scope = { key : string; counts : int array }

let scope_store : scope option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* Stage trackers are unconditional: failure reports want the active
   ladder stage even with no plan installed. *)
let stage_store : (string option * string option) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (None, None))

let set_stage s =
  let r = Domain.DLS.get stage_store in
  let _, last = !r in
  r := (s, (match s with Some _ -> s | None -> last))

let current_stage () = fst !(Domain.DLS.get stage_store)

let last_stage () = snd !(Domain.DLS.get stage_store)

let fresh_scope plan key = { key; counts = Array.make (Array.length plan.faults) 0 }

let with_scope ~key f =
  let stages = Domain.DLS.get stage_store in
  let prev_stages = !stages in
  stages := (None, None);
  let restore_scope =
    match !plan_ref with
    | None -> Fun.id
    | Some plan ->
        let r = Domain.DLS.get scope_store in
        let prev = !r in
        r := Some (fresh_scope plan key);
        fun () -> r := prev
  in
  Fun.protect
    ~finally:(fun () ->
      restore_scope ();
      stages := prev_stages)
    f

let active_scope plan =
  let r = Domain.DLS.get scope_store in
  match !r with
  | Some s when Array.length s.counts = Array.length plan.faults -> s
  | _ ->
      (* Standalone solve (no sweep arming a scope): an implicit root
         scope, so [rfss solve --fault-plan ...] works unadorned. *)
      let s = fresh_scope plan "" in
      r := Some s;
      s

(* ---------- install / uninstall ---------- *)

let uninstall () =
  plan_ref := None;
  Atomic.set skew_bits 0L;
  (match !saved_clock with
  | Some src ->
      saved_clock := None;
      Telemetry.Clock.install src
  | None -> ());
  Domain.DLS.get scope_store := None

let install plan =
  if !plan_ref <> None then uninstall ();
  (* Decorate the installed clock so [slow] faults age wall time for
     budgets and spans without burning CPU. Installed once, before any
     worker domain spawns, so workers read the wrapped source. *)
  let base = Telemetry.Clock.source () in
  saved_clock := Some base;
  Telemetry.Clock.install
    {
      base with
      Telemetry.Clock.wall = (fun () -> base.Telemetry.Clock.wall () +. skew ());
    };
  Atomic.set skew_bits 0L;
  plan_ref := Some plan

let installed () = !plan_ref

(* ---------- firing ---------- *)

let context_of scope =
  match current_stage () with
  | None -> scope.key ^ "/"
  | Some s -> scope.key ^ "/" ^ s

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else
    let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
    at 0

(* Visit every fault of [plan] bound to [site] whose filter matches the
   current context, bump its occurrence counter, and call [k] for the
   ones whose trigger fires. *)
let consult plan site k =
  let scope = active_scope plan in
  let ctx = context_of scope in
  Array.iteri
    (fun i f ->
      if
        f.site = site
        && (match f.filter with None -> true | Some sub -> contains ~sub ctx)
      then begin
        let occ = scope.counts.(i) + 1 in
        scope.counts.(i) <- occ;
        let fires =
          match f.trigger with
          | Nth { first; count } -> occ >= first && occ < first + count
          | Prob p -> uniform ~seed:plan.seed ~salt:ctx (1000000 * i + occ) < p
        in
        if fires then begin
          Telemetry.count "faultinject.fired";
          Telemetry.count ("faultinject." ^ kind_name f.kind);
          k ~occ ~ctx f
        end
      end)
    plan.faults

(* Kinds every site honours: process-level effects. *)
let side_effects site ~occ ~ctx f =
  match f.kind with
  | Crash ->
      raise
        (Injected_crash { site = site_name site; occurrence = occ; context = ctx })
  | Kill ->
      (* Simulated power loss for chaos tests: no atexit handlers, no
         buffered output flush — only completed checkpoint renames
         survive, which is exactly the guarantee under test. *)
      Unix._exit 137
  | Slow -> add_skew (Option.value f.magnitude ~default:1.0)
  | _ -> ()

let corrupt_vector site v =
  match !plan_ref with
  | None -> ()
  | Some plan ->
      consult plan site (fun ~occ ~ctx f ->
          (match f.kind with
          | Nan -> if Array.length v > 0 then v.(0) <- Float.nan
          | Inf -> if Array.length v > 0 then v.(0) <- Float.infinity
          | _ -> ());
          side_effects site ~occ ~ctx f)

let jacobian_fault () =
  match !plan_ref with
  | None -> None
  | Some plan ->
      let hit = ref None in
      consult plan Jacobian (fun ~occ ~ctx f ->
          (match f.kind with
          | Singular -> hit := Some `Singular
          | Ill_conditioned ->
              hit := Some (`Scale (Option.value f.magnitude ~default:1e-10))
          | _ -> ());
          side_effects Jacobian ~occ ~ctx f);
      !hit

let gmres_stall () =
  match !plan_ref with
  | None -> false
  | Some plan ->
      let hit = ref false in
      consult plan Gmres (fun ~occ ~ctx f ->
          (match f.kind with Stall -> hit := true | _ -> ());
          side_effects Gmres ~occ ~ctx f);
      !hit

let fire_point site =
  match !plan_ref with
  | None -> ()
  | Some plan -> consult plan site (side_effects site)
