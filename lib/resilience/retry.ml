type policy = {
  max_attempts : int;
  base_seconds : float;
  cap_seconds : float;
  degrade : bool;
  seed : int;
}

let default =
  {
    max_attempts = 3;
    base_seconds = 0.02;
    cap_seconds = 1.0;
    degrade = true;
    seed = 0;
  }

let none =
  { max_attempts = 1; base_seconds = 0.0; cap_seconds = 0.0; degrade = false; seed = 0 }

let backoff p ~salt ~attempt ~prev =
  let prev = if prev <= 0.0 then p.base_seconds else prev in
  let u = Faultinject.uniform ~seed:p.seed ~salt attempt in
  let hi = Float.max p.base_seconds (3.0 *. prev) in
  Float.min p.cap_seconds (p.base_seconds +. (u *. (hi -. p.base_seconds)))

let sleep = Telemetry.Clock.sleep
