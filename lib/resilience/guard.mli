(** Guarded evaluation: non-finite detection and containment.

    Exponential device models overflow readily (a diode at a few volts
    of forward bias evaluates [exp] past 1e300); a single Inf or NaN
    that escapes a residual or Jacobian evaluation poisons the Givens
    QR inside GMRES and every iterate after it. [Guard] locates the
    first offending entry — and, for block-structured vectors such as
    the flattened MPDE grid, reports *which* block (grid point) and
    *which* unknown within it — so failures are attributable instead of
    silent. *)

type violation = {
  index : int;  (** flat index of the first non-finite entry *)
  value : float;  (** the offending value (NaN or ±Inf) *)
  block : int option;  (** [index / block_size] when a block size is known *)
  offset : int option;  (** [index mod block_size] *)
  context : string;  (** human label: what was being evaluated *)
}

exception Non_finite of violation

val scan : ?context:string -> ?block_size:int -> Linalg.Vec.t -> violation option
(** First non-finite entry, if any. *)

val check : ?context:string -> ?block_size:int -> Linalg.Vec.t -> unit
(** @raise Non_finite on the first non-finite entry. *)

val finite : Linalg.Vec.t -> bool

val guarded :
  ?context:string ->
  ?block_size:int ->
  on_violation:(violation -> unit) ->
  (Linalg.Vec.t -> Linalg.Vec.t) ->
  Linalg.Vec.t ->
  Linalg.Vec.t
(** [guarded ~on_violation f x] evaluates [f x]; if the result contains
    a non-finite entry the callback fires (once per evaluation) before
    the result is returned unmodified. The caller's Newton loop rejects
    the step via its non-finite residual-norm handling; the callback
    exists for attribution/logging. *)

val clamp : limit:float -> Linalg.Vec.t -> int
(** In-place containment: NaN entries become [0.], entries beyond
    [±limit] (including ±Inf) are clamped to [±limit]. Returns the
    number of entries modified. *)

val pp_violation : Format.formatter -> violation -> unit

val violation_to_string : violation -> string
