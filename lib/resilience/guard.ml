type violation = {
  index : int;
  value : float;
  block : int option;
  offset : int option;
  context : string;
}

exception Non_finite of violation

let scan ?(context = "") ?block_size (v : Linalg.Vec.t) =
  let n = Array.length v in
  let rec find i =
    if i >= n then None
    else if Float.is_finite v.(i) then find (i + 1)
    else
      let block, offset =
        match block_size with
        | Some s when s > 0 -> (Some (i / s), Some (i mod s))
        | _ -> (None, None)
      in
      Some { index = i; value = v.(i); block; offset; context }
  in
  find 0

let check ?context ?block_size v =
  match scan ?context ?block_size v with
  | Some violation -> raise (Non_finite violation)
  | None -> ()

let finite v =
  let n = Array.length v in
  let rec go i = i >= n || (Float.is_finite v.(i) && go (i + 1)) in
  go 0

let guarded ?context ?block_size ~on_violation f x =
  let r = f x in
  (* Fault-injection hook: a [nan@residual]/[inf@residual] fault
     corrupts the freshly evaluated vector *before* the scan, so the
     poison flows through the same violation path a real one would. *)
  Faultinject.corrupt_vector Faultinject.Residual r;
  (match scan ?context ?block_size r with
  | Some violation -> on_violation violation
  | None -> ());
  r

let clamp ~limit (v : Linalg.Vec.t) =
  let touched = ref 0 in
  for i = 0 to Array.length v - 1 do
    let x = v.(i) in
    if Float.is_nan x then begin
      v.(i) <- 0.0;
      incr touched
    end
    else if x > limit then begin
      v.(i) <- limit;
      incr touched
    end
    else if x < -.limit then begin
      v.(i) <- -.limit;
      incr touched
    end
  done;
  !touched

let pp_violation ppf { index; value; block; offset; context } =
  let where =
    match (block, offset) with
    | Some b, Some o -> Printf.sprintf "grid-point %d, unknown %d (flat %d)" b o index
    | _ -> Printf.sprintf "index %d" index
  in
  Format.fprintf ppf "non-finite value %h at %s%s" value where
    (if context = "" then "" else " during " ^ context)

let violation_to_string v = Format.asprintf "%a" pp_violation v
