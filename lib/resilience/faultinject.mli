(** Deterministic, seed-driven fault injection for the solver stack.

    A {!plan} is a list of faults, each bound to a hook {!site} and
    armed by a {!trigger}. Hook points live in {!Guard} (residual
    corruption), {!Mpde.Solver} (Jacobian corruption), GMRES (forced
    stagnation), {!Numeric.Newton} (per-iteration crash / slowdown /
    kill) and [Engine.Sweep] (per-job faults). Installing a plan is
    process-global; when none is installed every hook is a single [ref]
    load — the same zero-cost-when-disabled discipline as telemetry.

    {2 Determinism}

    Faults never consult wall time or a global RNG. [Nth] triggers
    count {e per-fault occurrences within the armed scope} (one scope
    per sweep-job attempt, or the implicit root scope for standalone
    solves), so two runs of the same plan on the same jobs fire
    identically — regardless of how many domains execute the sweep or
    in which order jobs are claimed. [Prob] triggers hash
    (seed, scope key, fault index, occurrence) through splitmix64:
    random-looking but exactly reproducible.

    {2 Plan grammar}

    A plan is parsed from a comma-separated spec, e.g.
    ["seed=7,nan@residual/newton:1,crash@job/#1:1"]. Each item is
    either [seed=N] or

    {v KIND@SITE[/FILTER]:TRIGGER[=MAGNITUDE] v}

    - [KIND]: [nan] [inf] [singular] [illcond] [stall] [crash] [slow]
      [kill]
    - [SITE]: [residual] [jacobian] [gmres] [newton] [job]
    - [FILTER]: substring matched against ["<scope key>/<ladder stage>"];
      a sweep scope key is ["<job label>#<attempt>"] (degraded attempt:
      ["#d"]), so ["/newton"] targets a ladder stage, ["#1"] the first
      attempt, and ["fd=8000"] one job of a sweep.
    - [TRIGGER]: [N] (fire on the Nth matching occurrence), [NxM] (fire
      on occurrences N..N+M-1), or [~P] (fire each occurrence with
      probability P).
    - [MAGNITUDE]: kind-specific float — seconds for [slow], scale
      factor for [illcond]. *)

type site = Residual | Jacobian | Gmres | Newton_iter | Job

type kind =
  | Nan  (** overwrite element 0 of the vector with NaN *)
  | Inf  (** overwrite element 0 of the vector with +inf *)
  | Singular  (** zero a Jacobian row: exact singularity *)
  | Ill_conditioned  (** scale a Jacobian row by [magnitude] *)
  | Stall  (** force GMRES to report stagnation without iterating *)
  | Crash  (** raise {!Injected_crash} (a simulated domain death) *)
  | Slow
      (** advance the injected clock by [magnitude] seconds, burning
          wall budget without burning CPU *)
  | Kill  (** [Unix._exit 137]: real process death, for chaos tests *)

type trigger =
  | Nth of { first : int; count : int }
  | Prob of float

type fault = {
  kind : kind;
  site : site;
  filter : string option;
  trigger : trigger;
  magnitude : float option;
}

type plan = { seed : int; faults : fault array }

exception
  Injected_crash of { site : string; occurrence : int; context : string }

val site_name : site -> string
val kind_name : kind -> string

val parse : string -> (plan, string) result
(** Parse the spec grammar above. Errors name the offending item. *)

val parse_exn : string -> plan
(** [parse] or [invalid_arg]. *)

val to_string : plan -> string
(** Round-trips through {!parse}. *)

val install : plan -> unit
(** Make [plan] the process-global plan. Wraps the installed
    {!Telemetry.Clock} source so [slow] faults advance wall readings.
    Installing over an existing plan uninstalls it first. *)

val uninstall : unit -> unit
(** Remove the plan and restore the clock source. Idempotent. *)

val installed : unit -> plan option

(** {2 Scopes and stages}

    Scope and stage tracking are unconditional (a few domain-local
    stores), because failure reports want the active ladder stage even
    when no plan is installed. *)

val with_scope : key:string -> (unit -> 'a) -> 'a
(** Run [f] with a fresh occurrence-counter scope named [key] on the
    calling domain (sweep: one scope per job attempt). Resets the
    stage trackers. Nests: the previous scope is restored on exit. *)

val set_stage : string option -> unit
(** Called by {!Ladder} around each stage attempt. [Some name] also
    records [name] as the last stage entered on this domain. *)

val current_stage : unit -> string option
val last_stage : unit -> string option
(** The most recent stage entered on this domain since the enclosing
    scope began — survives the stage's exit, so an exception handler
    can report where the ladder was. *)

(** {2 Hook points}

    Every hook is O(1) and allocation-free when no plan is installed. *)

val corrupt_vector : site -> Linalg.Vec.t -> unit
(** Fire [nan]/[inf] faults at [site] by mutating the vector in place;
    also executes any [crash]/[slow]/[kill] faults bound to [site]. *)

val jacobian_fault : unit -> [ `Singular | `Scale of float ] option
(** Consult [jacobian]-site faults: [`Singular] for [singular],
    [`Scale m] for [illcond]; executes [crash]/[slow]/[kill]. *)

val gmres_stall : unit -> bool
(** [true] when a [stall] fault bound to the [gmres] site fires;
    executes [crash]/[slow]/[kill]. *)

val fire_point : site -> unit
(** Pure side-effect site ([newton], [job]): executes
    [crash]/[slow]/[kill] faults. *)

val uniform : seed:int -> salt:string -> int -> float
(** The deterministic PRNG behind [Prob] triggers, exposed for other
    deterministic randomness (retry backoff jitter): splitmix64 of
    (seed, salt, index) mapped to [0, 1). *)
