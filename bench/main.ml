(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index), plus the ablations
   DESIGN.md calls out. Two parts:

   1. experiment series — each figure/table is recomputed once and its
      rows/series printed in the shape the paper reports;
   2. bechamel micro-timings — one Test.make per experiment kernel.

   Run: dune exec bench/main.exe            (everything)
        dune exec bench/main.exe -- series  (series only)
        dune exec bench/main.exe -- timings (bechamel only) *)

module W = Circuit.Waveform

let pr fmt = Printf.printf fmt

let header title =
  pr "\n================================================================\n";
  pr "%s\n" title;
  pr "================================================================\n"

(* Wall time from the shared monotonic clock; [Sys.time] only measures
   CPU seconds, which silently under-reports any solver that blocks or
   is descheduled. Both are returned so tables can show the gap. *)
let time f =
  let w0 = Telemetry.Clock.wall () and c0 = Telemetry.Clock.cpu () in
  let y = f () in
  (y, Telemetry.Clock.wall () -. w0, Telemetry.Clock.cpu () -. c0)

(* ------------------------------------------------------------------ *)
(* FIG1 / FIG2: ideal mixing surfaces, unsheared vs sheared            *)
(* ------------------------------------------------------------------ *)

let ideal_product_waveform f1 f2 =
  {
    W.dc = 0.0;
    terms =
      [
        {
          W.gain = 1.0;
          factors =
            [
              { W.shape = W.Cos { phase = 0.0 }; freq = f1 };
              { W.shape = W.Cos { phase = 0.0 }; freq = f2 };
            ];
        };
      ];
  }

let fig1_fig2 () =
  header
    "FIG1/FIG2 - ideal mixing z(t) = cos(2π f1 t)·cos(2π f2 t), f1 = 1 GHz, f2 = f1 - 10 kHz";
  let f1 = 1e9 in
  let fd = 10e3 in
  let f2 = f1 -. fd in
  let z = ideal_product_waveform f1 f2 in
  let shear = Mpde.Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let n = 8 in
  pr "\nFIG1 (unsheared, both axes span 1 ns; no difference-frequency variation visible):\n";
  pr "%8s" "t1\\t2(ns)";
  for j = 0 to n - 1 do
    pr "%8.3f" (float_of_int j /. float_of_int n)
  done;
  pr "\n";
  for i = 0 to n - 1 do
    let t1 = float_of_int i /. float_of_int n *. 1e-9 in
    pr "%8.3f" (1e9 *. t1);
    for j = 0 to n - 1 do
      let t2 = float_of_int j /. float_of_int n *. 1e-9 in
      pr "%8.3f" (W.eval_with ~phase_of:(Mpde.Shear.phase_unsheared shear ~t1 ~t2) z)
    done;
    pr "\n"
  done;
  pr "\nFIG2 (sheared, t2 axis spans the 0.1 ms difference period):\n";
  pr "%8s" "t1\\t2(us)";
  for j = 0 to n - 1 do
    pr "%8.1f" (1e6 *. (float_of_int j /. float_of_int n) /. fd)
  done;
  pr "\n";
  for i = 0 to n - 1 do
    let t1 = float_of_int i /. float_of_int n *. 1e-9 in
    pr "%8.3f" (1e9 *. t1);
    for j = 0 to n - 1 do
      let t2 = float_of_int j /. float_of_int n /. fd in
      pr "%8.3f" (W.eval_with ~phase_of:(Mpde.Shear.phase shear ~t1 ~t2) z)
    done;
    pr "\n"
  done;
  pr "\nShape check: FIG2's j-axis variation is the 10 kHz difference tone\n\
     (cos envelope from +1 through -1 and back), invisible in FIG1.\n"

(* ------------------------------------------------------------------ *)
(* FIG3-FIG6: balanced LO-doubling mixer                               *)
(* ------------------------------------------------------------------ *)

let solve_balanced_mixer () =
  let f_lo = 450e6 and fd = 15e3 in
  let rf_signal, bits = Circuits.paper_rf_bitstream ~f_lo ~fd () in
  let { Circuits.mna; _ } = Circuits.balanced_mixer ~f_lo ~rf_signal () in
  let shear = Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd in
  let sol = Mpde.Solver.solve_mna ~shear ~n1:40 ~n2:30 mna in
  (sol, mna, bits)

let fig3_to_fig6 () =
  header
    "FIG3-FIG6 - balanced LO-doubling mixer, LO 450 MHz, bit-modulated RF near 900 MHz, fd = 15 kHz, 40x30 grid";
  let (sol, mna, bits), seconds, cpu_seconds = time solve_balanced_mixer in
  let stats = sol.Mpde.Solver.stats in
  pr "solve: converged=%b  newton=%d  gmres-iters=%d  residual=%.2e  wall=%.2fs  cpu=%.2fs\n"
    stats.Mpde.Solver.converged stats.Mpde.Solver.newton_iterations
    stats.Mpde.Solver.linear_iterations stats.Mpde.Solver.residual_norm seconds
    cpu_seconds;
  pr "(paper: 26 Newton iterations, 1m03s on a 1.4 GHz Athlon; 1200 grid unknowns)\n";
  let nodes = Circuits.balanced_mixer_nodes in
  let diff =
    Mpde.Extract.differential_surface sol mna nodes.Circuits.out_plus nodes.Circuits.out_minus
  in
  pr "\nFIG3 - multi-time differential output (every 5th grid line):\n";
  pr "%10s" "t1(ns)\\t2";
  for j = 0 to 29 do
    if j mod 5 = 0 then pr "%9.1fus" (1e6 *. Mpde.Grid.t2_of sol.Mpde.Solver.grid j)
  done;
  pr "\n";
  for i = 0 to 39 do
    if i mod 5 = 0 then begin
      pr "%10.3f" (1e9 *. Mpde.Grid.t1_of sol.Mpde.Solver.grid i);
      for j = 0 to 29 do
        if j mod 5 = 0 then pr "%11.4f" diff.(i).(j)
      done;
      pr "\n"
    end
  done;
  let env = Mpde.Extract.envelope sol ~values:diff in
  let times = Mpde.Extract.envelope_times sol in
  pr "\nFIG4 - baseband differential output along the difference time scale (0-%.0f us):\n"
    (1e6 /. 15e3);
  pr "  bits = %s (one 0-bit nulls the envelope)\n"
    (String.concat "" (Array.to_list (Array.map (fun b -> if b then "1" else "0") bits)));
  Array.iteri
    (fun j v -> pr "  t2 = %6.2f us  v = %+.4f V\n" (1e6 *. times.(j)) v)
    env;
  let vs = Mpde.Extract.surface_of_node sol mna nodes.Circuits.source_node in
  pr "\nFIG5 - voltage at the differential pair's common source (doubler output), j = 0 column:\n";
  for i = 0 to 39 do
    if i mod 2 = 0 then
      pr "  t1 = %5.3f ns  v = %.4f V\n" (1e9 *. Mpde.Grid.t1_of sol.Mpde.Solver.grid i)
        vs.(i).(0)
  done;
  let col = Array.init 40 (fun i -> vs.(i).(0)) in
  let h = Numeric.Fft.real_harmonics col in
  pr "  harmonic content: |H1| = %.4f, |H2| = %.4f  (H2 >> H1: LO doubling)\n"
    (fst h.(1)) (fst h.(2));
  let t_start = 2.223e-6 in
  let times6, series6 =
    Mpde.Extract.diagonal sol ~values:vs ~t_start ~t_stop:(t_start +. (5.0 /. 450e6))
      ~samples:40
  in
  pr "\nFIG6 - one-time source voltage over 5 LO periods (diagonal resampling):\n";
  Array.iteri
    (fun k v -> if k mod 2 = 0 then pr "  t = %.5f us  v = %.4f V\n" (1e6 *. times6.(k)) v)
    series6;
  pr "\nMixing-product map of the differential output (2-D spectrum of FIG3):\n";
  pr "%-8s %-8s %-14s %-16s\n" "k1*fLO" "k2*fd" "amplitude (V)" "frequency";
  List.iter
    (fun p ->
      pr "%-8d %-8d %-14.5f %.6e Hz\n" p.Mpde.Extract.k1 p.Mpde.Extract.k2
        p.Mpde.Extract.amplitude p.Mpde.Extract.frequency)
    (Mpde.Extract.mixing_spectrum sol ~values:diff ~top:8 ());
  (sol, mna, bits)

(* ------------------------------------------------------------------ *)
(* SPEEDUP / BREAKEVEN tables                                          *)
(* ------------------------------------------------------------------ *)

let unbalanced_fixture fd =
  let f_lo = 1e6 in
  let rf_signal = W.cosine ~amplitude:1.0 ~freq:(f_lo +. fd) () in
  let { Circuits.mna; _ } =
    Circuits.unbalanced_mixer ~f_lo ~rf_signal ~rf_amplitude:0.05 ()
  in
  (mna, Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd)

let speedup_tables () =
  header "SPEEDUP - MPDE vs single-time shooting across one difference period";
  pr "(unbalanced switching mixer, LO 1 MHz; shooting uses 10 steps per LO cycle;\n";
  pr " paper reports >100x at disparity 30000 and break-even near 200)\n\n";
  pr "%-10s %-12s %-12s %-12s %-14s\n" "disparity" "mpde (s)" "shooting (s)" "ratio"
    "shoot steps";
  let rows =
    List.map
      (fun disparity ->
        let fd = 1e6 /. disparity in
        let mna, shear = unbalanced_fixture fd in
        let sol, mpde_t, _ = time (fun () -> Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:16 mna) in
        assert sol.Mpde.Solver.stats.converged;
        let steps = int_of_float (10.0 *. disparity) in
        let dc = Circuit.Dcop.solve_exn mna in
        let _, shoot_t, _ =
          time (fun () ->
              Steady.Shooting.solve ~steps_per_period:steps ~x0:dc
                ~dae:(Circuit.Mna.dae mna) ~period:(1.0 /. fd) ())
        in
        pr "%-10.0f %-12.4f %-12.4f %-12.1f %-14d\n" disparity mpde_t shoot_t
          (shoot_t /. mpde_t) steps;
        (disparity, mpde_t, shoot_t))
      [ 10.; 30.; 100.; 300.; 600. ]
  in
  (* Break-even: linear fit of shooting time vs disparity against the
     median MPDE time. *)
  let mpde_med =
    let ts = List.map (fun (_, m, _) -> m) rows in
    List.nth (List.sort compare ts) (List.length ts / 2)
  in
  let slope =
    let sum_xy = List.fold_left (fun a (d, _, s) -> a +. (d *. s)) 0.0 rows in
    let sum_xx = List.fold_left (fun a (d, _, _) -> a +. (d *. d)) 0.0 rows in
    sum_xy /. sum_xx
  in
  pr "\nBREAKEVEN - shooting time ≈ %.2e s per unit disparity; MPDE ≈ %.4f s flat\n"
    slope mpde_med;
  pr "  → crossover at disparity ≈ %.0f; extrapolated advantage at the paper's\n"
    (mpde_med /. slope);
  pr "    disparity 30000 ≈ %.0fx (paper: >100x)\n" (slope *. 30000.0 /. mpde_med)

(* ------------------------------------------------------------------ *)
(* NEWTON convergence table (paper: 26 iters warm; continuation cold)  *)
(* ------------------------------------------------------------------ *)

let newton_table () =
  header "NEWTON - convergence behaviour on the balanced mixer (40x30 grid)";
  let f_lo = 450e6 and fd = 15e3 in
  let rf_signal, _ = Circuits.paper_rf_bitstream ~f_lo ~fd () in
  let { Circuits.mna; _ } = Circuits.balanced_mixer ~f_lo ~rf_signal () in
  let shear = Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd in
  let grid = Mpde.Grid.make ~shear ~n1:40 ~n2:30 in
  let sys = Mpde.Assemble.of_mna ~shear mna in
  pr "%-28s %-8s %-10s %-14s %-10s\n" "start" "newton" "converged" "continuation" "wall (s)";
  let run name seed options =
    let sol, seconds, _ = time (fun () -> Mpde.Solver.solve ~options ?seed sys grid) in
    pr "%-28s %-8d %-10b %-14d %-10.2f\n" name sol.Mpde.Solver.stats.newton_iterations
      sol.Mpde.Solver.stats.converged sol.Mpde.Solver.stats.continuation_steps seconds
  in
  let dc = Circuit.Dcop.solve_exn mna in
  run "warm (DC operating point)" (Some dc) Mpde.Solver.default_options;
  run "cold (zero state)" None Mpde.Solver.default_options;
  run "cold, no continuation" None
    { Mpde.Solver.default_options with allow_continuation = false };
  let qs, qs_seconds, _ = time (fun () -> Mpde.Solver.quasi_static_start ~seed:dc sys grid) in
  pr "%-28s %-8s %-10s %-14s %-10.2f\n" "(quasi-static seed build)" "-" "-" "-" qs_seconds;
  run "quasi-static start" (Some qs) Mpde.Solver.default_options;
  pr "(paper: 26 NR iterations from a good starting guess; continuation\n\
     \ reliably obtained solutions when plain Newton failed)\n"

(* ------------------------------------------------------------------ *)
(* ABL-LIN: direct sparse LU vs GMRES + block sweep                    *)
(* ------------------------------------------------------------------ *)

let ablation_linear_solvers () =
  header "ABL-LIN - MPDE linear solver ablation (direct sparse LU vs GMRES+sweep)";
  let mna, shear = unbalanced_fixture 1e4 in
  pr "%-10s %-16s %-16s %-14s\n" "grid" "direct (s)" "gmres-sweep (s)" "gmres iters";
  List.iter
    (fun (n1, n2) ->
      let run solver =
        let options = { Mpde.Solver.default_options with linear_solver = solver } in
        time (fun () -> Mpde.Solver.solve_mna ~options ~shear ~n1 ~n2 mna)
      in
      let _, direct_t, _ = run Mpde.Solver.Direct in
      let sol_g, gmres_t, _ = run Mpde.Solver.default_gmres in
      pr "%-10s %-16.4f %-16.4f %-14d\n"
        (Printf.sprintf "%dx%d" n1 n2)
        direct_t gmres_t sol_g.Mpde.Solver.stats.linear_iterations)
    [ (16, 8); (32, 16); (40, 30); (64, 32) ]

(* ------------------------------------------------------------------ *)
(* ABL-RCM: bandwidth / fill-in of the MPDE Jacobian under reordering  *)
(* ------------------------------------------------------------------ *)

let ablation_rcm () =
  header "ABL-RCM - RCM reordering of the MPDE Jacobian (direct-solver fill-in)";
  let mna, shear = unbalanced_fixture 1e4 in
  let sys = Mpde.Assemble.of_mna ~shear mna in
  pr "%-10s %-12s %-12s %-14s %-14s %-12s %-12s\n" "grid" "bandwidth" "rcm bw"
    "LU nnz" "rcm LU nnz" "factor (s)" "rcm (s)";
  List.iter
    (fun (n1, n2) ->
      let grid = Mpde.Grid.make ~shear ~n1 ~n2 in
      let n = sys.Mpde.Assemble.size in
      let big = Array.make (Mpde.Grid.points grid * n) 0.01 in
      let jacs = Mpde.Assemble.point_jacobians sys grid big in
      let jac = Mpde.Assemble.jacobian_csr Mpde.Assemble.Backward grid ~size:n ~jacs in
      let perm = Sparse.Rcm.ordering jac in
      let reordered = Sparse.Rcm.permute_symmetric jac perm in
      let f, t_plain, _ = time (fun () -> Sparse.Splu.factor jac) in
      let fr, t_rcm, _ = time (fun () -> Sparse.Splu.factor reordered) in
      let lnz, unz = Sparse.Splu.lu_nnz f in
      let lnz_r, unz_r = Sparse.Splu.lu_nnz fr in
      pr "%-10s %-12d %-12d %-14d %-14d %-12.4f %-12.4f\n"
        (Printf.sprintf "%dx%d" n1 n2)
        (Sparse.Rcm.bandwidth jac)
        (Sparse.Rcm.bandwidth reordered)
        (lnz + unz) (lnz_r + unz_r) t_plain t_rcm)
    [ (16, 8); (32, 16); (40, 30) ];
  pr "(the natural MPDE ordering is already banded in t1 but wraps periodically;\n\
     \ RCM trims the wrap-induced bandwidth — the GMRES+sweep path avoids the\n\
     \ issue entirely and remains the default)\n"

(* ------------------------------------------------------------------ *)
(* ABL-DISC: backward vs central-in-t1 accuracy                        *)
(* ------------------------------------------------------------------ *)

let ablation_discretization () =
  header "ABL-DISC - t1 discretization accuracy on a linear two-tone circuit";
  let f1 = 1e6 and fd = 1e3 in
  let r = 1e3 and c = 100e-12 in
  let { Circuits.mna; _ } =
    Circuits.rc_lowpass ~r ~c
      ~drive:(W.sum (W.sine ~amplitude:1.0 ~freq:f1 ()) (W.sine ~amplitude:1.0 ~freq:(f1 +. fd) ()))
      ()
  in
  let shear = Mpde.Shear.make ~fast_freq:f1 ~slow_freq:fd in
  let analytic f t =
    let w = 2.0 *. Float.pi *. f in
    let wrc = w *. r *. c in
    1.0 /. sqrt (1.0 +. (wrc *. wrc)) *. sin ((w *. t) -. atan wrc)
  in
  let err scheme n1 =
    let options =
      { Mpde.Solver.default_options with scheme; linear_solver = Mpde.Solver.Direct }
    in
    let sol = Mpde.Solver.solve_mna ~options ~shear ~n1 ~n2:8 mna in
    let vout = Mpde.Extract.surface_of_node sol mna "out" in
    let _, series =
      Mpde.Extract.diagonal sol ~values:vout ~t_start:0.0 ~t_stop:(1.0 /. f1) ~samples:64
    in
    let worst = ref 0.0 in
    Array.iteri
      (fun k s ->
        let t = 1.0 /. f1 *. float_of_int k /. 63.0 in
        let e = analytic f1 t +. analytic (f1 +. fd) t in
        worst := Float.max !worst (Float.abs (s -. e)))
      series;
    !worst
  in
  pr "%-8s %-18s %-18s\n" "n1" "backward max-err" "central-t1 max-err";
  List.iter
    (fun n1 ->
      pr "%-8d %-18.5f %-18.5f\n" n1 (err Mpde.Assemble.Backward n1)
        (err Mpde.Assemble.Central_t1 n1))
    [ 16; 32; 64; 128 ];
  pr "(backward is 1st order, central is 2nd order in h1; backward remains the\n\
     \ default for its robustness on switching waveforms)\n"

(* ------------------------------------------------------------------ *)
(* ABL-HB: harmonics needed vs waveform sharpness                      *)
(* ------------------------------------------------------------------ *)

(* Evaluate the trigonometric interpolant through periodic samples at
   normalized position u — exact for HB solutions, so grids of
   different sizes can be compared without interpolation bias. *)
let trig_eval samples u =
  let h = Numeric.Fft.real_harmonics samples in
  let acc = ref (fst h.(0)) in
  for k = 1 to Array.length h - 1 do
    let amplitude, phase = h.(k) in
    acc := !acc +. (amplitude *. cos ((2.0 *. Float.pi *. float_of_int k *. u) +. phase))
  done;
  !acc

let ablation_hb_sharpness () =
  header "ABL-HB - harmonic-balance cost vs switching sharpness (paper §1 motivation)";
  let freq = 1e3 in
  pr "%-22s %-22s\n" "drive rise (fraction)" "harmonics for <5% error";
  List.iter
    (fun rise_frac ->
      let { Circuits.mna; _ } =
        Circuits.diode_rectifier ~load_r:10e3 ~load_c:5e-9
          ~drive:
            (W.pulse ~rise_frac ~fall_frac:rise_frac ~low:(-1.0) ~high:1.5 ~duty:0.5
               ~freq ())
          ()
      in
      let dc = Circuit.Dcop.solve_exn mna in
      let dae = Circuit.Mna.dae mna in
      let idx = Circuit.Mna.node_index mna "out" in
      let waveform harmonics =
        let r = Steady.Hb.solve ~x_init:dc ~dae ~period:(1.0 /. freq) ~harmonics () in
        if not r.Steady.Hb.converged then None
        else Some (Array.map (fun x -> x.(idx)) r.Steady.Hb.states)
      in
      match waveform 40 with
      | None -> pr "%-22.3f (reference did not converge)\n" rise_frac
      | Some reference ->
          let swing =
            Array.fold_left Float.max neg_infinity reference
            -. Array.fold_left Float.min infinity reference
          in
          let err w =
            let worst = ref 0.0 in
            for k = 0 to 99 do
              let u = float_of_int k /. 100.0 in
              worst := Float.max !worst (Float.abs (trig_eval w u -. trig_eval reference u))
            done;
            !worst /. Float.max swing 1e-12
          in
          let needed =
            List.find_opt
              (fun h -> match waveform h with Some w -> err w < 0.05 | None -> false)
              [ 2; 3; 4; 6; 8; 12; 16; 24; 32 ]
          in
          pr "%-22.3f %-22s\n" rise_frac
            (match needed with Some h -> string_of_int h | None -> ">32"))
    [ 0.25; 0.15; 0.1; 0.05; 0.01 ];
  pr "(sharper switching needs steeply more harmonics, while the time-domain MPDE\n\
     \ grid cost is set only by the time resolution of the edge)\n"

(* ------------------------------------------------------------------ *)
(* Conversion gain / distortion table (paper §3 pure-tone figures)      *)
(* ------------------------------------------------------------------ *)

let gain_distortion_table () =
  header "GAIN - down-conversion gain and distortion from pure-tone excitation";
  let f_lo = 450e6 and fd = 15e3 in
  let shear = Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd in
  let rf_signal = W.cosine ~amplitude:1.0 ~freq:((2.0 *. f_lo) +. fd) () in
  pr "%-12s %-14s %-12s %-10s\n" "RF ampl (V)" "baseband (V)" "gain (dB)" "THD (%)";
  List.iter
    (fun rf_amplitude ->
      let { Circuits.mna; _ } = Circuits.balanced_mixer ~f_lo ~rf_amplitude ~rf_signal () in
      let sol = Mpde.Solver.solve_mna ~shear ~n1:40 ~n2:30 mna in
      let nodes = Circuits.balanced_mixer_nodes in
      let diff =
        Mpde.Extract.differential_surface sol mna nodes.Circuits.out_plus
          nodes.Circuits.out_minus
      in
      let amp = Mpde.Extract.t2_harmonic_amplitude ~values:diff ~harmonic:1 in
      pr "%-12.3f %-14.5f %-12.2f %-10.2f\n" rf_amplitude amp
        (Mpde.Extract.conversion_gain_db ~values:diff ~rf_amplitude ~harmonic:1)
        (100.0 *. Mpde.Extract.thd ~values:diff ()))
    [ 0.01; 0.05; 0.1; 0.2; 0.4 ]

(* ------------------------------------------------------------------ *)
(* bechamel micro-timings                                              *)
(* ------------------------------------------------------------------ *)

let bechamel_timings () =
  header "TIMINGS - bechamel estimates (monotonic clock, OLS)";
  let open Bechamel in
  let mixer_test =
    Test.make ~name:"fig3_6_mixer_mpde_40x30"
      (Staged.stage (fun () -> ignore (solve_balanced_mixer ())))
  in
  let fig12_test =
    let f1 = 1e9 in
    let fd = 10e3 in
    let z = ideal_product_waveform f1 (f1 -. fd) in
    let shear = Mpde.Shear.make ~fast_freq:f1 ~slow_freq:fd in
    Test.make ~name:"fig1_2_surface_eval_1024pts"
      (Staged.stage (fun () ->
           let acc = ref 0.0 in
           for i = 0 to 31 do
             for j = 0 to 31 do
               let t1 = float_of_int i *. 1e-9 /. 32.0 in
               let t2 = float_of_int j /. fd /. 32.0 in
               acc := !acc +. W.eval_with ~phase_of:(Mpde.Shear.phase shear ~t1 ~t2) z
             done
           done;
           ignore !acc))
  in
  let mna, shear = unbalanced_fixture 1e4 in
  let mpde_small_test =
    Test.make ~name:"speedup_mpde_disparity100"
      (Staged.stage (fun () -> ignore (Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:16 mna)))
  in
  let dc = Circuit.Dcop.solve_exn mna in
  let shooting_test =
    Test.make ~name:"speedup_shooting_disparity100"
      (Staged.stage (fun () ->
           ignore
             (Steady.Shooting.solve ~steps_per_period:1000 ~x0:dc
                ~dae:(Circuit.Mna.dae mna) ~period:1e-4 ())))
  in
  let splu_test =
    (* The MPDE Jacobian factor/solve kernel in isolation. *)
    let sys = Mpde.Assemble.of_mna ~shear mna in
    let grid = Mpde.Grid.make ~shear ~n1:32 ~n2:16 in
    let n = sys.Mpde.Assemble.size in
    let big = Array.make (Mpde.Grid.points grid * n) 0.01 in
    let jacs = Mpde.Assemble.point_jacobians sys grid big in
    let jac = Mpde.Assemble.jacobian_csr Mpde.Assemble.Backward grid ~size:n ~jacs in
    let rhs = Array.init (Mpde.Grid.points grid * n) (fun i -> sin (float_of_int i)) in
    Test.make ~name:"abl_lin_splu_factor_solve"
      (Staged.stage (fun () -> ignore (Sparse.Splu.solve (Sparse.Splu.factor jac) rhs)))
  in
  let fft_test =
    let x = Linalg.Cvec.init 4096 (fun k -> { Complex.re = sin (0.1 *. float_of_int k); im = 0.0 }) in
    Test.make ~name:"substrate_fft_4096" (Staged.stage (fun () -> ignore (Numeric.Fft.fft x)))
  in
  let tests =
    Test.make_grouped ~name:"rfss"
      [ fig12_test; mixer_test; mpde_small_test; shooting_test; splu_test; fft_test ]
  in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None () in
    Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test
  in
  let raw = benchmark tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  pr "%-40s %-16s %-8s\n" "benchmark" "time/run" "r²";
  Hashtbl.iter
    (fun name ols_result ->
      let estimate =
        match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan in
      let human t =
        if t > 1e9 then Printf.sprintf "%.3f s" (t /. 1e9)
        else if t > 1e6 then Printf.sprintf "%.3f ms" (t /. 1e6)
        else if t > 1e3 then Printf.sprintf "%.3f us" (t /. 1e3)
        else Printf.sprintf "%.1f ns" t
      in
      pr "%-40s %-16s %-8.4f\n" name (human estimate) r2)
    results

(* ------------------------------------------------------------------ *)
(* BENCH_mpde.json - machine-readable results for CI tracking          *)
(* ------------------------------------------------------------------ *)

let git_revision () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Some line
    | _ -> None
  with Unix.Unix_error _ | Sys_error _ -> None

let json_escape str =
  let buf = Buffer.create (String.length str) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    str;
  Buffer.contents buf

(* SWEEP: the parallel executor on a fixed 8-job MPDE disparity sweep
   (unbalanced mixer, LO 1 MHz) at 1, 2, and 4 domains. Wall times feed
   the perf gate (sweep.wall_1 lower-better, sweep.speedup_2
   higher-better); the waveform hashes must agree across domain counts
   or the "deterministic" flag — and the gate's convergence check —
   trips. *)

let sweep_disparities = [| 20.; 40.; 60.; 80.; 100.; 150.; 200.; 300. |]

let sweep_jobs () =
  Array.map
    (fun disparity ->
      let f_lo = 1e6 in
      let fd = f_lo /. disparity in
      let problem =
        Engine.Problem.make
          ~label:(Printf.sprintf "disparity=%g" disparity)
          ~output:"out" ~f_fast:f_lo ~fd
          (fun () ->
            Circuits.unbalanced_mixer ~f_lo
              ~rf_signal:(W.cosine ~amplitude:1.0 ~freq:(f_lo +. fd) ())
              ~rf_amplitude:0.05 ())
      in
      Engine.Sweep.job
        ~options:{ Engine.Options.default with n1 = 32; n2 = 16 }
        ~kind:Engine.Mpde problem)
    sweep_disparities

let sweep_signature outcomes =
  Array.map
    (fun (o : Engine.Sweep.outcome) ->
      match o.Engine.Sweep.result with
      | Error _ -> None
      | Ok r ->
          Some
            ( r.Engine.Result.converged,
              Array.map Int64.bits_of_float
                r.Engine.Result.waveform.Engine.Result.values ))
    outcomes

(* Sum one gauge over a sweep's per-job telemetry summaries (0 where a
   job recorded nothing). *)
let sweep_gauge_sum name outcomes =
  Array.fold_left
    (fun acc (o : Engine.Sweep.outcome) ->
      match o.Engine.Sweep.result with
      | Ok r -> (
          match r.Engine.Result.telemetry with
          | Some s -> (
              match List.assoc_opt name s.Telemetry.Summary.gauges with
              | Some v -> acc +. v
              | None -> acc)
          | None -> acc)
      | Error _ -> acc)
    0.0 outcomes

(* The 12-field tuple this used to return was unreadable at the use
   site; named fields also let the JSON writer below pick values
   without positional bookkeeping. *)
type sweep_results = {
  sw_jobs : int;
  sw_wall_1 : float;
  sw_wall_2 : float;
  sw_wall_4 : float;
  sw_speedup_2 : float;
  sw_speedup_4 : float;
  sw_utilization_2 : float;
  sw_utilization_4 : float;
  sw_deterministic : bool;
  sw_ok : bool;
  sw_alloc_minor : float;
  sw_alloc_major : float;
  sw_retries : int;
  sw_degraded_jobs : int;
}

(* Fraction of the sweep's domains x wall actually spent inside jobs:
   sum of per-job wall over the theoretical capacity. Low utilization
   means domains sat idle (load imbalance, spawn overhead). *)
let domain_utilization ~domains ~wall outcomes =
  let busy =
    Array.fold_left
      (fun acc (o : Engine.Sweep.outcome) -> acc +. o.Engine.Sweep.wall_seconds)
      0.0 outcomes
  in
  if wall > 0.0 && domains > 0 then busy /. (float_of_int domains *. wall)
  else 0.0

let sweep_bench () =
  (* The host's core count belongs in the headline: every speedup below
     is meaningless without it (a 1-core runner can't speed anything
     up, and the gate skips the speedup floors there). *)
  header
    (Printf.sprintf
       "SWEEP - 8-job MPDE disparity sweep on 1/2/4 domains (Engine.Sweep) \
        [host cores: %d]"
       (Engine.Sweep.default_domains ()));
  pr "recommended domains on this machine: %d\n"
    (Engine.Sweep.default_domains ());
  let run ?(telemetry = false) domains =
    let outcomes, wall, _ =
      time (fun () ->
          (* Retry armed so the bench measures the instrumented path the
             CLI runs; the gate asserts it never fires on a clean sweep. *)
          Engine.Sweep.run ~domains ~per_job_telemetry:telemetry
            ~retry:Resilience.Retry.default (sweep_jobs ()))
    in
    let converged =
      Array.for_all
        (fun (o : Engine.Sweep.outcome) ->
          match o.Engine.Sweep.result with
          | Ok r -> r.Engine.Result.converged
          | Error _ -> false)
        outcomes
    in
    pr "domains=%d  wall=%.4fs  all-converged=%b\n" domains wall converged;
    (outcomes, wall, converged)
  in
  (* Per-job allocation attribution rides on the serial run: telemetry
     recorders are per job there, and the serial wall is the one the
     speedups are measured against in both runs. *)
  let o1, wall_1, ok1 = run ~telemetry:true 1 in
  let o2, wall_2, ok2 = run 2 in
  let o4, wall_4, ok4 = run 4 in
  let deterministic =
    sweep_signature o1 = sweep_signature o2
    && sweep_signature o1 = sweep_signature o4
  in
  let speedup_2 = wall_1 /. Float.max wall_2 1e-12 in
  let speedup_4 = wall_1 /. Float.max wall_4 1e-12 in
  let utilization_2 = domain_utilization ~domains:2 ~wall:wall_2 o2 in
  let utilization_4 = domain_utilization ~domains:4 ~wall:wall_4 o4 in
  let alloc_minor = sweep_gauge_sum "alloc.job.minor_words" o1 in
  let alloc_major = sweep_gauge_sum "alloc.job.major_words" o1 in
  let retries =
    Array.fold_left
      (fun acc o -> acc + Engine.Sweep.retries o)
      0
      (Array.concat [ o1; o2; o4 ])
  in
  let degraded_jobs =
    Array.fold_left
      (fun acc (o : Engine.Sweep.outcome) ->
        if o.Engine.Sweep.degraded then acc + 1 else acc)
      0
      (Array.concat [ o1; o2; o4 ])
  in
  pr "speedup: x%.2f on 2 domains, x%.2f on 4; deterministic=%b\n" speedup_2
    speedup_4 deterministic;
  pr "domain utilization: %.0f%% on 2 domains, %.0f%% on 4\n"
    (100.0 *. utilization_2) (100.0 *. utilization_4);
  pr "allocation (serial run): %.3gM minor words, %.3gM major words\n"
    (alloc_minor /. 1e6) (alloc_major /. 1e6);
  pr "resilience: %d retries, %d degraded jobs across all runs\n" retries
    degraded_jobs;
  {
    sw_jobs = Array.length sweep_disparities;
    sw_wall_1 = wall_1;
    sw_wall_2 = wall_2;
    sw_wall_4 = wall_4;
    sw_speedup_2 = speedup_2;
    sw_speedup_4 = speedup_4;
    sw_utilization_2 = utilization_2;
    sw_utilization_4 = utilization_4;
    sw_deterministic = deterministic;
    sw_ok = ok1 && ok2 && ok4;
    sw_alloc_minor = alloc_minor;
    sw_alloc_major = alloc_major;
    sw_retries = retries;
    sw_degraded_jobs = degraded_jobs;
  }

(* KERNEL micro-benchmarks: the two hot kernels the mixer solve leans
   on, timed in isolation so a regression is attributable to the kernel
   rather than to solver iteration counts. [spmv_mflops] applies the
   assembled mixer-grid Jacobian (the matrix the CSR Bigarray SpMV
   route sees); [block_solve_cols_per_s] applies one n=13 dense LU
   factor to a 30-column panel — the widest wavefront level of the
   40x30 sweep — through {!Linalg.Lu.solve_many_into}. Both report the
   best of three timed batches. *)
type kernel_results = { spmv_mflops : float; block_solve_cols_per_s : float }

let kernel_bench () =
  header "KERNEL - hot-kernel micro-benchmarks (Bigarray SpMV, blocked panel solve)";
  let f_lo = 450e6 and fd = 15e3 in
  let rf_signal, _ = Circuits.paper_rf_bitstream ~f_lo ~fd () in
  let { Circuits.mna; _ } = Circuits.balanced_mixer ~f_lo ~rf_signal () in
  let shear = Mpde.Shear.make ~fast_freq:f_lo ~slow_freq:fd in
  let sys = Mpde.Assemble.of_mna ~shear mna in
  let grid = Mpde.Grid.make ~shear ~n1:40 ~n2:30 in
  let n = sys.Mpde.Assemble.size in
  let np = Mpde.Grid.points grid in
  let big = np * n in
  let state = Array.init big (fun i -> 0.01 *. sin (float_of_int i)) in
  let jacs = Mpde.Assemble.point_jacobians sys grid state in
  let jac = Mpde.Assemble.jacobian_csr Mpde.Assemble.Backward grid ~size:n ~jacs in
  let best_of_3 f =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Telemetry.Clock.wall () in
      f ();
      best := Float.min !best (Telemetry.Clock.wall () -. t0)
    done;
    !best
  in
  (* SpMV: y <- A x on the big mixer Jacobian, batched to ~tens of ms. *)
  let x = Linalg.Kernel.create big and y = Linalg.Kernel.create big in
  for i = 0 to big - 1 do
    Linalg.Kernel.set x i (sin (float_of_int i))
  done;
  let spmv_reps = 400 in
  let spmv_t =
    best_of_3 (fun () ->
        for _ = 1 to spmv_reps do
          Sparse.Csr.mul_vec_ba_into jac x y
        done)
  in
  let nnz = Sparse.Csr.nnz jac in
  let spmv_mflops =
    2.0 *. float_of_int nnz *. float_of_int spmv_reps
    /. Float.max spmv_t 1e-12 /. 1e6
  in
  (* Panel solve: one dense factor applied to a 30-column panel (the
     widest anti-diagonal of the 40x30 sweep). *)
  let cols = 30 in
  let d = Linalg.Mat.create n n in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Linalg.Mat.set d i j (if i = j then 4.0 else 1.0 /. float_of_int (1 + abs (i - j)))
    done
  done;
  let f = Linalg.Lu.factor d in
  let pb = Array.init (cols * n) (fun i -> cos (float_of_int i)) in
  let px = Array.make (cols * n) 0.0 in
  let panel_reps = 4000 in
  let panel_t =
    best_of_3 (fun () ->
        for _ = 1 to panel_reps do
          Linalg.Lu.solve_many_into f ~cols pb px
        done)
  in
  let block_solve_cols_per_s =
    float_of_int (cols * panel_reps) /. Float.max panel_t 1e-12
  in
  pr "spmv (big mixer Jacobian, %d nnz): %.1f MFLOP/s\n" nnz spmv_mflops;
  pr "blocked panel solve (n=%d, %d cols): %.3g columns/s\n" n cols
    block_solve_cols_per_s;
  { spmv_mflops; block_solve_cols_per_s }

(* Serve section: exercise the persistent solve service in-process —
   the same job twice (the second must replay from the result cache)
   plus a cache-near frequency point (warm-started from the first
   solve's converged surface) — and record the cache and warm-start
   counters so CI can track service behaviour across commits. *)
let serve_bench () =
  let fixture =
    match Serve.Catalog.find "rc" with Ok f -> f | Error e -> failwith e
  in
  let options =
    { Engine.Options.default with Engine.Options.n1 = 24; n2 = 16 }
  in
  let job fd =
    {
      Serve.Protocol.fixture;
      engine = Engine.Mpde;
      f_fast = fixture.Serve.Catalog.default_fast;
      fd;
      options;
      wall_seconds = None;
      max_newton_budget = None;
      warm = true;
    }
  in
  let jobs = Serve.Jobs.create ~workers:1 () in
  let drain h =
    let poll = Serve.Jobs.poll h in
    let rec go () =
      match poll () with
      | `Data _ -> go ()
      | `Wait ->
          Unix.sleepf 0.005;
          go ()
      | `Eof -> ()
    in
    go ()
  in
  let fd = fixture.Serve.Catalog.default_fd in
  drain (Serve.Jobs.submit jobs (job fd));
  drain (Serve.Jobs.submit jobs (job fd));
  drain (Serve.Jobs.submit jobs (job (fd *. 1.02)));
  let stats = Serve.Cache.stats (Serve.Jobs.cache jobs) in
  let warm_starts = Serve.Jobs.warm_starts jobs in
  Serve.Jobs.stop jobs;
  (stats, warm_starts)

(* One telemetry-instrumented solve of the paper's balanced mixer plus
   an MPDE-vs-shooting comparison, dumped as BENCH_mpde.json so CI can
   archive and diff solver performance across commits. *)
let bench_json ?(file = "BENCH_mpde.json") () =
  header (Printf.sprintf "JSON - writing %s" file);
  (* GC attribution across everything the bench runs (mixer solve,
     repeats, sweep on 1/2/4 domains): armed before the first solve so
     worker-domain rings are covered from spawn. *)
  let gc_monitor = Telemetry.Runtime.start () in
  Telemetry.enable ();
  let (sol, _, _), wall, cpu = time solve_balanced_mixer in
  let telemetry =
    Option.map Telemetry.Summary.of_snapshot (Telemetry.snapshot ())
  in
  Telemetry.disable ();
  (* The solve is deterministic, so min-of-3 wall is the honest number:
     repeats (untraced, so the counters above stay single-run) strip
     scheduler noise that a single sample on a busy runner would bake
     into the baseline. *)
  let wall, cpu =
    let w = ref wall and c = ref cpu in
    for _ = 1 to 2 do
      let _, wi, ci = time solve_balanced_mixer in
      if wi < !w then begin
        w := wi;
        c := ci
      end
    done;
    (!w, !c)
  in
  let stats = sol.Mpde.Solver.stats in
  let disparity = 100.0 in
  let fd = 1e6 /. disparity in
  let mna, shear = unbalanced_fixture fd in
  let _, mpde_t, _ = time (fun () -> Mpde.Solver.solve_mna ~shear ~n1:32 ~n2:16 mna) in
  let dc = Circuit.Dcop.solve_exn mna in
  let _, shoot_t, _ =
    time (fun () ->
        Steady.Shooting.solve
          ~steps_per_period:(int_of_float (10.0 *. disparity))
          ~x0:dc ~dae:(Circuit.Mna.dae mna) ~period:(1.0 /. fd) ())
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"benchmark\":\"mpde\"";
  (match git_revision () with
  | Some rev -> Buffer.add_string buf (Printf.sprintf ",\"revision\":\"%s\"" (json_escape rev))
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf
       ",\"mixer\":{\"circuit\":\"balanced-mixer\",\"n1\":40,\"n2\":30,\"converged\":%b,\"strategy\":\"%s\",\"newton_iterations\":%d,\"gmres_iterations\":%d,\"residual_norm\":%.6e,\"wall_seconds\":%.6f,\"cpu_seconds\":%.6f"
       stats.Mpde.Solver.converged
       (json_escape stats.Mpde.Solver.strategy)
       stats.Mpde.Solver.newton_iterations stats.Mpde.Solver.linear_iterations
       stats.Mpde.Solver.residual_norm wall cpu);
  (match telemetry with
  | Some summary ->
      Buffer.add_string buf ",\"telemetry\":";
      Telemetry.Summary.add_json buf summary
  | None -> ());
  Buffer.add_string buf "}";
  Buffer.add_string buf
    (Printf.sprintf
       ",\"speedup\":{\"disparity\":%.0f,\"mpde_wall_seconds\":%.6f,\"shooting_wall_seconds\":%.6f,\"ratio\":%.3f}"
       disparity mpde_t shoot_t
       (shoot_t /. Float.max mpde_t 1e-12));
  let kr = kernel_bench () in
  Buffer.add_string buf
    (Printf.sprintf
       ",\"kernel\":{\"spmv_mflops\":%.3f,\"block_solve_cols_per_s\":%.1f}"
       kr.spmv_mflops kr.block_solve_cols_per_s);
  let sw = sweep_bench () in
  Buffer.add_string buf
    (Printf.sprintf
       ",\"sweep\":{\"jobs\":%d,\"cores\":%d,\"converged\":%b,\"wall_1\":%.6f,\"wall_2\":%.6f,\"wall_4\":%.6f,\"speedup_2\":%.3f,\"speedup_4\":%.3f,\"domain_utilization_2\":%.4f,\"domain_utilization_4\":%.4f,\"deterministic\":%b,\"alloc_job_minor_words_1\":%.0f,\"alloc_job_major_words_1\":%.0f,\"retries\":%d,\"degraded_jobs\":%d}"
       sw.sw_jobs
       (Engine.Sweep.default_domains ())
       sw.sw_ok sw.sw_wall_1 sw.sw_wall_2 sw.sw_wall_4 sw.sw_speedup_2
       sw.sw_speedup_4 sw.sw_utilization_2 sw.sw_utilization_4
       sw.sw_deterministic sw.sw_alloc_minor sw.sw_alloc_major sw.sw_retries
       sw.sw_degraded_jobs);
  (* GC section for the gate: percentiles from the runtime-events
     monitor. A runtime that refused a cursor reports zeros rather than
     dropping the section (a missing watched metric is a gate error). *)
  let gc_mc, gc_ms, gc_p99_minor, gc_p99_major, gc_lost =
    match gc_monitor with
    | None -> (0, 0, 0.0, 0.0, 0)
    | Some m ->
        Telemetry.Runtime.poll m;
        let s = Telemetry.Runtime.stats m in
        Telemetry.Runtime.stop m;
        let p99 (h : Telemetry.histogram) =
          if h.Telemetry.count > 0 then Telemetry.quantile h 0.99 else 0.0
        in
        ( s.Telemetry.Runtime.minor_collections,
          s.Telemetry.Runtime.major_slices,
          p99 s.Telemetry.Runtime.minor_pause,
          p99 s.Telemetry.Runtime.major_pause,
          s.Telemetry.Runtime.lost_events )
  in
  Buffer.add_string buf
    (Printf.sprintf
       ",\"gc\":{\"minor_collections\":%d,\"major_slices\":%d,\"minor_pause_p99\":%.6e,\"major_pause_p99\":%.6e,\"lost_events\":%d}"
       gc_mc gc_ms gc_p99_minor gc_p99_major gc_lost);
  let sv_stats, sv_warm = serve_bench () in
  Buffer.add_string buf
    (Printf.sprintf
       ",\"serve\":{\"cache_hits\":%d,\"cache_misses\":%d,\"cache_evictions\":%d,\"warm_starts\":%d}"
       sv_stats.Serve.Cache.hits sv_stats.Serve.Cache.misses
       sv_stats.Serve.Cache.evictions sv_warm);
  Buffer.add_string buf "}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pr "mixer: wall=%.3fs cpu=%.3fs newton=%d gmres=%d\n" wall cpu
    stats.Mpde.Solver.newton_iterations stats.Mpde.Solver.linear_iterations;
  pr "speedup at disparity %.0f: mpde=%.4fs shooting=%.4fs ratio=%.1fx\n" disparity
    mpde_t shoot_t
    (shoot_t /. Float.max mpde_t 1e-12);
  pr "serve: cache hits=%d misses=%d warm_starts=%d\n" sv_stats.Serve.Cache.hits
    sv_stats.Serve.Cache.misses sv_warm;
  pr "wrote %s\n" file

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let series () =
    fig1_fig2 ();
    ignore (fig3_to_fig6 ());
    speedup_tables ();
    newton_table ();
    gain_distortion_table ();
    ablation_linear_solvers ();
    ablation_rcm ();
    ablation_discretization ();
    ablation_hb_sharpness ()
  in
  match mode with
  | "series" ->
      series ();
      bench_json ()
  | "timings" -> bechamel_timings ()
  | "json" -> bench_json ()
  | _ ->
      series ();
      bench_json ();
      bechamel_timings ()
