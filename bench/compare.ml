(* Perf-regression gate: diff a fresh BENCH_mpde.json against the
   committed bench/baseline.json and fail (exit 1) when any tracked
   metric drifts past its tolerance.

   Usage: compare.exe BASELINE CURRENT [OPTIONS]
     --tolerance T          default relative tolerance (default 0.15)
     --tolerance-wall T     override for mixer.wall_seconds and sweep.wall_1
     --tolerance-speedup T  override for speedup.ratio
     --tolerance-sweep T    override for sweep.speedup_2 / sweep.speedup_4

   Wall-clock metrics are noisy across machines, so CI passes a loose
   --tolerance-wall while keeping iteration counts tight: an iteration
   regression is deterministic and always means the solver changed.
   The sweep speedups additionally depend on the runner's core count
   (a single-core machine can only reach ~1.0), hence their own knob. *)

let usage () =
  prerr_endline
    "usage: compare.exe BASELINE CURRENT [--tolerance T] [--tolerance-wall T] \
     [--tolerance-speedup T] [--tolerance-sweep T]";
  exit 2

let parse_args () =
  let positional = ref [] in
  let tolerance = ref Diagnostics.Gate.default_tolerance in
  let overrides = ref [] in
  let rec go = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
        tolerance := float_of_string v;
        go rest
    | "--tolerance-wall" :: v :: rest ->
        let t = float_of_string v in
        overrides :=
          ("mixer.wall_seconds", t) :: ("sweep.wall_1", t) :: !overrides;
        go rest
    | "--tolerance-speedup" :: v :: rest ->
        overrides := ("speedup.ratio", float_of_string v) :: !overrides;
        go rest
    | "--tolerance-sweep" :: v :: rest ->
        let t = float_of_string v in
        overrides :=
          ("sweep.speedup_2", t) :: ("sweep.speedup_4", t) :: !overrides;
        go rest
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" -> usage ()
    | arg :: rest ->
        positional := arg :: !positional;
        go rest
  in
  (try go (List.tl (Array.to_list Sys.argv)) with Failure _ -> usage ());
  match List.rev !positional with
  | [ baseline; current ] -> (baseline, current, !tolerance, !overrides)
  | _ -> usage ()

let read_json label file =
  let contents =
    try
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg ->
      Printf.eprintf "compare: cannot read %s file %s: %s\n" label file msg;
      exit 2
  in
  try Diagnostics.Json_min.parse contents
  with Diagnostics.Json_min.Parse_error msg ->
    Printf.eprintf "compare: %s file %s is not valid JSON: %s\n" label file msg;
    exit 2

let () =
  let baseline_file, current_file, tolerance, overrides = parse_args () in
  let baseline = read_json "baseline" baseline_file in
  let current = read_json "current" current_file in
  let checks = Diagnostics.Gate.default_checks ~overrides tolerance in
  let result = Diagnostics.Gate.evaluate ~checks ~baseline ~current () in
  Printf.printf "baseline: %s\ncurrent:  %s\n\n" baseline_file current_file;
  print_string (Diagnostics.Gate.render result);
  (* The gate silently waives the absolute speedup floor on single-core
     hosts (there is no parallelism to win); say so, or a passing run on
     a 1-core box looks like the sweep actually cleared the floor. *)
  (match Diagnostics.Gate.lookup_num current [ "sweep"; "cores" ] with
  | Some cores when cores < 2.0 ->
      print_string "note: speedup gates skipped: 1-core host\n"
  | _ -> ());
  if not result.Diagnostics.Gate.passed then exit 1
