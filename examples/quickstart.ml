(* Quickstart: the paper's ideal mixing example (§2, eqs. (5)-(11)).

   Two closely spaced tones f1 = 1 GHz and f2 = f1 - 10 kHz are
   multiplied. We build the unsheared multi-time surface ẑ1 (Fig. 1),
   the sheared difference-frequency surface ẑ2 (Fig. 2), and then solve
   an actual multiplying-mixer circuit with the MPDE to read off the
   10 kHz difference tone directly. Run with:

     dune exec examples/quickstart.exe *)

let () =
  let f1 = 1e9 in
  let fd = 10e3 in
  let f2 = f1 -. fd in
  let shear = Mpde.Shear.make ~fast_freq:f1 ~slow_freq:fd in

  (* The product waveform z(t) = cos(2π f1 t) · cos(2π f2 t) as a
     single two-factor term, so its multi-time surfaces come straight
     from Waveform.eval_with. *)
  let z =
    {
      Circuit.Waveform.dc = 0.0;
      terms =
        [
          {
            Circuit.Waveform.gain = 1.0;
            factors =
              [
                { Circuit.Waveform.shape = Cos { phase = 0.0 }; freq = f1 };
                { Circuit.Waveform.shape = Cos { phase = 0.0 }; freq = f2 };
              ];
          };
        ];
    }
  in
  let n1 = 24 and n2 = 24 in
  let t1p = Mpde.Shear.t1_period shear and t2p = Mpde.Shear.t2_period shear in
  Printf.printf "# Fig.1-style unsheared surface z1(t1,t2): t1, t2 in ns (both fast)\n";
  for i = 0 to 4 do
    for j = 0 to 4 do
      let t1 = float_of_int i *. t1p /. float_of_int n1 in
      let t2 = float_of_int j *. t1p /. float_of_int n2 in
      let v =
        Circuit.Waveform.eval_with
          ~phase_of:(Mpde.Shear.phase_unsheared shear ~t1 ~t2)
          z
      in
      Printf.printf "z1(%.3fns, %.3fns) = %+.3f  " (1e9 *. t1) (1e9 *. t2) v
    done;
    print_newline ()
  done;
  Printf.printf "\n# Fig.2-style sheared surface z2(t1,t2): t2 now spans 0.1 ms\n";
  for j = 0 to 4 do
    let t2 = float_of_int j *. t2p /. 4.0 in
    let v = Circuit.Waveform.eval_with ~phase_of:(Mpde.Shear.phase shear ~t1:0.0 ~t2) z in
    Printf.printf "z2(0, %.3fms) = %+.3f\n" (1e3 *. t2) v
  done;

  (* Now an actual circuit: behavioral multiplier into an RC IF load,
     solved through the unified engine API. *)
  let lo = Circuit.Waveform.cosine ~amplitude:1.0 ~freq:f1 () in
  let rf = Circuit.Waveform.cosine ~amplitude:1.0 ~freq:f2 () in
  let problem =
    Engine.Problem.make ~label:"quickstart" ~output:"out" ~f_fast:f1 ~fd
      (fun () -> Circuits.ideal_mixer ~lo ~rf ())
  in
  let options =
    { Engine.Options.default with n1 = 32; n2 = 24; condition_estimate = true }
  in
  let r = Engine.run problem (Engine.make ~options Engine.Mpde) in
  Printf.printf "\nMPDE solve: converged=%b, %d Newton iterations, %.3fs\n"
    r.Engine.Result.converged r.Engine.Result.newton_iterations
    r.Engine.Result.wall_seconds;
  Printf.printf "%s\n"
    (Diagnostics.Health.summary_line r.Engine.Result.health);
  let sol = Option.get r.Engine.Result.mpde_solution in
  (* Identically-built MNA for node-index lookups in the extractors. *)
  let { Circuits.mna; _ } = Circuits.ideal_mixer ~lo ~rf () in
  let out = Mpde.Extract.surface_of_node sol mna "out" in
  let amp = Mpde.Extract.t2_harmonic_amplitude ~values:out ~harmonic:1 in
  Printf.printf "difference-tone (10 kHz) amplitude at the IF output: %.4f V\n" amp;
  Printf.printf "conversion gain: %.2f dB (ideal multiplier: -6.02 dB)\n"
    (Mpde.Extract.conversion_gain_db ~values:out ~rf_amplitude:1.0 ~harmonic:1);
  Printf.printf "\nbaseband waveform along the difference time scale:\n";
  let env = Mpde.Extract.envelope sol ~values:out in
  let times = Mpde.Extract.envelope_times sol in
  Array.iteri
    (fun j v -> if j mod 4 = 0 then Printf.printf "  t2 = %6.2f us   v = %+.4f V\n" (1e6 *. times.(j)) v)
    env
